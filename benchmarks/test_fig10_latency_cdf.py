"""Fig. 10 — CDF of detection latency.

Paper: latency is the number of instructions between error activation and
detection; ~95% of VM-transition-detected faults are within 700 instructions;
hardware exceptions and software assertions have generally shorter latencies;
all detections happen before the VM execution resumes.
"""

from __future__ import annotations

from repro.analysis import ComparisonTable, LatencyStudy, ascii_cdf
from repro.faults.outcomes import DetectionTechnique

CDF_POINTS = [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]


def test_fig10_regenerate(benchmark, campaign_result):
    study = benchmark(LatencyStudy.from_records, campaign_result.records)
    print("\nFig. 10 — cumulative distribution of detection latency")
    print(study.table(CDF_POINTS))
    print()
    print(ascii_cdf(
        {tech.value: cdf for tech, cdf in study.cdfs.items()}, x_max=1000
    ))
    table = ComparisonTable("Fig. 10 headline numbers")
    table.add_percent(
        "transition detections within 700 instr", 0.95,
        study.fraction_within(DetectionTechnique.VM_TRANSITION, 700),
    )
    p95 = study.percentile(DetectionTechnique.VM_TRANSITION, 0.95)
    table.add("transition p95 latency", "<= 700 instr",
              f"{p95:,.0f} instr" if p95 is not None else "---")
    hw50 = study.percentile(DetectionTechnique.HW_EXCEPTION, 0.5)
    table.add("hw-exception median", "short (leftmost curve)",
              f"{hw50:,.0f} instr")
    print("\n" + table.render())


def test_majority_of_transition_detections_within_700(campaign_result):
    study = LatencyStudy.from_records(campaign_result.records)
    assert study.fraction_within(DetectionTechnique.VM_TRANSITION, 700) > 0.6


def test_runtime_techniques_are_faster_than_transition(campaign_result):
    """'Hardware exceptions and software assertions have generally shorter
    latencies' — compare medians."""
    study = LatencyStudy.from_records(campaign_result.records)
    transition_median = study.percentile(DetectionTechnique.VM_TRANSITION, 0.5)
    for technique in (DetectionTechnique.HW_EXCEPTION, DetectionTechnique.SW_ASSERTION):
        median = study.percentile(technique, 0.5)
        if median is not None and transition_median is not None:
            assert median <= transition_median


def test_cdf_is_monotone(campaign_result):
    study = LatencyStudy.from_records(campaign_result.records)
    for technique, cdf in study.cdfs.items():
        fractions = [cdf.fraction_at(x) for x in CDF_POINTS]
        assert fractions == sorted(fractions), technique
