"""Fig. 9 — Detection coverage of long latency errors.

Paper: long-latency errors (those crossing VM entry) grouped by consequence;
VM transition detection catches 92.6% of APP SDC cases and 96.8% of APP crash
cases; one-VM failures are the hardest class.
"""

from __future__ import annotations

from repro.analysis import ComparisonTable, long_latency_breakdown
from repro.faults.outcomes import FailureClass


def test_fig9_regenerate(benchmark, campaign_result):
    result = benchmark(lambda: long_latency_breakdown(campaign_result.records))
    print("\nFig. 9 — detection coverage of long latency errors")
    paper = {
        FailureClass.APP_SDC: 0.926,
        FailureClass.APP_CRASH: 0.968,
        FailureClass.ALL_VM_FAILURE: None,
        FailureClass.ONE_VM_FAILURE: None,
    }
    table = ComparisonTable("Fig. 9 long-latency detection")
    for klass, (detected, total) in result.items():
        measured = detected / total if total else None
        table.add_percent(klass.value, paper[klass], measured,
                          note=f"{detected}/{total}")
    print("\n" + table.render())


def test_long_latency_population_exists(campaign_result):
    """The campaign must produce every long-latency consequence class."""
    breakdown = long_latency_breakdown(campaign_result.records)
    for klass, (_, total) in breakdown.items():
        assert total > 0, f"no {klass.value} cases generated"


def test_transition_detection_catches_long_latency_errors(campaign_result):
    """A meaningful fraction of would-be SDC/crash faults is caught before
    the guest resumes (the paper's core claim; our absolute rate is lower —
    see EXPERIMENTS.md)."""
    breakdown = long_latency_breakdown(campaign_result.records)
    sdc_detected, sdc_total = breakdown[FailureClass.APP_SDC]
    crash_detected, crash_total = breakdown[FailureClass.APP_CRASH]
    assert (sdc_detected + crash_detected) / (sdc_total + crash_total) > 0.2


def test_one_vm_failures_are_the_hardest_class(campaign_result):
    """Wrong-but-valid work (e.g. a flipped event-channel port) mimics a
    legitimate execution; in the paper too, the one-VM bar shows the largest
    undetected share."""
    breakdown = long_latency_breakdown(campaign_result.records)
    rates = {
        klass: (d / t if t else 1.0) for klass, (d, t) in breakdown.items()
    }
    assert rates[FailureClass.ONE_VM_FAILURE] <= max(
        rates[FailureClass.APP_SDC],
        rates[FailureClass.APP_CRASH],
        rates[FailureClass.ALL_VM_FAILURE],
    )
