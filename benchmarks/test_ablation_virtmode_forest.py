"""Further ablations: hardware-assisted mode and the forest-vs-tree trade.

Two studies beyond the paper's evaluation:

* the fault-injection campaign repeated on hardware-assisted (HVM) guests —
  the paper only injects under para-virtualization but measures both modes'
  activation rates in Fig. 3;
* a random-forest ensemble versus the single random tree the paper deploys:
  what accuracy the low-cost single-tree operating point gives up.
"""

from __future__ import annotations

import pytest

from repro.analysis import ComparisonTable, coverage_by_technique
from repro.faults import CampaignConfig, FaultInjectionCampaign
from repro.faults.outcomes import DetectionTechnique
from repro.ml import RandomForestClassifier, compile_tree, evaluate
from repro.workloads import VirtMode

from conftest import scaled


@pytest.fixture(scope="module")
def hvm_campaign(trained_bundle):
    config = CampaignConfig(
        n_injections=scaled(3000), seed=78, mode=VirtMode.HVM
    )
    return FaultInjectionCampaign(config, detector=trained_bundle.detector).run()


def test_hvm_campaign_regenerate(benchmark, hvm_campaign, campaign_result):
    summary = benchmark(
        lambda: (
            coverage_by_technique(campaign_result.records),
            coverage_by_technique(hvm_campaign.records),
        )
    )
    pv, hvm = summary
    table = ComparisonTable("Virtualization-mode ablation (PV vs HVM campaign)")
    table.add_percent("coverage (PV)", None, pv.coverage)
    table.add_percent("coverage (HVM)", None, hvm.coverage)
    table.add_percent("hw-exception share (HVM)", None,
                      hvm.share(DetectionTechnique.HW_EXCEPTION))
    table.add_percent("vm-transition share (HVM)", None,
                      hvm.share(DetectionTechnique.VM_TRANSITION))
    print("\n" + table.render())


def test_hvm_detection_stack_still_works(hvm_campaign):
    """The detector trained on PV traffic still covers the HVM exit mix
    (hypercalls and interrupts are shared; VMCS reasons are new)."""
    cov = coverage_by_technique(hvm_campaign.records)
    assert cov.total > 100
    assert cov.coverage > 0.6
    assert cov.share(DetectionTechnique.HW_EXCEPTION) > 0.4


class TestForestVsTree:
    @pytest.fixture(scope="class")
    def comparison(self, trained_bundle):
        train = trained_bundle.random_tree.train_set
        test = trained_bundle.random_tree.test_set
        forest = RandomForestClassifier(n_trees=11, seed=7).fit(
            train.oversampled(1, 3)
        )
        forest_cm = evaluate(test.y, forest.predict(test.X))
        tree_cm = trained_bundle.random_tree.confusion
        tree_cost = compile_tree(trained_bundle.random_tree.classifier).max_depth
        return tree_cm, forest_cm, tree_cost, forest.deployment_comparisons

    def test_forest_regenerate(self, benchmark, comparison):
        tree_cm, forest_cm, tree_cost, forest_cost = benchmark(lambda: comparison)
        table = ComparisonTable("Single random tree (paper) vs random forest")
        table.add_percent("accuracy: single tree", None, tree_cm.accuracy)
        table.add_percent("accuracy: 11-tree forest", None, forest_cm.accuracy)
        table.add("worst-case comparisons/entry", f"{tree_cost} (deployed)",
                  f"{forest_cost}")
        print("\n" + table.render())

    def test_forest_costs_an_order_of_magnitude_more(self, comparison):
        _, _, tree_cost, forest_cost = comparison
        assert forest_cost > 5 * tree_cost

    def test_forest_accuracy_not_much_better(self, comparison):
        """The paper's single-tree choice is justified: the ensemble buys at
        most a couple of points at ~10x deployment cost."""
        tree_cm, forest_cm, _, _ = comparison
        assert forest_cm.accuracy - tree_cm.accuracy < 0.03
        assert forest_cm.accuracy > tree_cm.accuracy - 0.02
