"""ASCII figure rendering."""

import numpy as np
import pytest

from repro.analysis import BoxStats, Cdf
from repro.analysis.plots import ascii_boxplot, ascii_cdf, ascii_stacked_bars
from repro.errors import CampaignConfigError


class TestBoxplot:
    def make(self):
        return {
            "mcf": BoxStats.from_samples(np.array([5e3, 7e3, 9e3, 12e3, 40e3])),
            "postmark": BoxStats.from_samples(np.array([2e4, 3e4, 4e4, 5e4, 1.7e5])),
        }

    def test_renders_all_labels(self):
        text = ascii_boxplot(self.make())
        assert "mcf" in text and "postmark" in text
        assert "log scale" in text

    def test_box_glyphs_present(self):
        text = ascii_boxplot(self.make())
        for glyph in ("[", "]", "=", "|"):
            assert glyph in text

    def test_wider_distribution_draws_wider_box(self):
        text = ascii_boxplot(self.make(), width=60)
        rows = {line.split()[0]: line for line in text.splitlines()[:-1]}
        assert rows["postmark"].index("[") > rows["mcf"].index("[")

    def test_linear_scale(self):
        text = ascii_boxplot(self.make(), log_scale=False)
        assert "linear" in text

    def test_empty_rejected(self):
        with pytest.raises(CampaignConfigError):
            ascii_boxplot({})


class TestCdfPlot:
    def make(self):
        return {
            "hw": Cdf.from_samples([1, 2, 3, 4, 5]),
            "transition": Cdf.from_samples([50, 150, 400, 600, 900]),
        }

    def test_curves_and_legend(self):
        text = ascii_cdf(self.make(), x_max=1000)
        assert "* hw" in text and "o transition" in text
        assert "100%" in text and "0%" in text

    def test_fast_curve_saturates_left(self):
        text = ascii_cdf(self.make(), x_max=1000, width=40, height=10)
        top_row = text.splitlines()[0]
        # The hw curve reaches 100% almost immediately.
        assert "*" in top_row
        assert top_row.index("*") < 8

    def test_empty_rejected(self):
        with pytest.raises(CampaignConfigError):
            ascii_cdf({}, x_max=10)


class TestStackedBars:
    def make(self):
        return {
            "bzip2": [("hw", 0.7), ("assert", 0.1), ("transition", 0.1),
                      ("undetected", 0.1)],
            "postmark": [("hw", 0.6), ("assert", 0.1), ("transition", 0.1),
                         ("undetected", 0.2)],
        }

    def test_renders_bars_and_legend(self):
        text = ascii_stacked_bars(self.make())
        assert "bzip2" in text and "#=hw" in text

    def test_segment_widths_reflect_shares(self):
        text = ascii_stacked_bars(self.make(), width=50)
        bzip2_row = next(l for l in text.splitlines() if l.startswith("bzip2"))
        postmark_row = next(l for l in text.splitlines() if l.startswith("postmark"))
        assert bzip2_row.count("#") > postmark_row.count("#")

    def test_empty_rejected(self):
        with pytest.raises(CampaignConfigError):
            ascii_stacked_bars({})
