"""Coverage aggregation, latency studies, and the overhead model."""

import pytest

from repro.analysis import (
    LatencyStudy,
    PerfOverheadModel,
    coverage_by_benchmark,
    coverage_by_technique,
    long_latency_breakdown,
    undetected_breakdown,
)
from repro.errors import CampaignConfigError
from repro.faults.outcomes import (
    DetectionTechnique,
    FailureClass,
    FaultSpec,
    TrialRecord,
    UndetectedKind,
)
from repro.workloads import BENCHMARKS, get_profile


def record(
    benchmark="mcf",
    failure=FailureClass.HYPERVISOR_CRASH,
    technique=DetectionTechnique.HW_EXCEPTION,
    latency=5,
    kind=None,
) -> TrialRecord:
    return TrialRecord(
        benchmark=benchmark,
        vmer=0,
        fault=FaultSpec("rax", 1, 1),
        activated=True,
        failure_class=failure,
        detected_by=technique,
        detection_latency=latency,
        undetected_kind=kind,
    )


SAMPLE = (
    record(),
    record(technique=DetectionTechnique.SW_ASSERTION, latency=10),
    record(failure=FailureClass.APP_SDC, technique=DetectionTechnique.VM_TRANSITION, latency=300),
    record(failure=FailureClass.APP_SDC, technique=DetectionTechnique.UNDETECTED,
           latency=None, kind=UndetectedKind.TIME_VALUES),
    record(failure=FailureClass.BENIGN, technique=DetectionTechnique.UNDETECTED, latency=None),
    record(benchmark="postmark", failure=FailureClass.ONE_VM_FAILURE,
           technique=DetectionTechnique.UNDETECTED, latency=None,
           kind=UndetectedKind.MIS_CLASSIFY),
    record(failure=FailureClass.LATENT, technique=DetectionTechnique.UNDETECTED, latency=None),
)


class TestCoverage:
    def test_denominator_is_manifested_only(self):
        cov = coverage_by_technique(SAMPLE)
        assert cov.total == 5  # benign and latent excluded

    def test_shares_sum_to_one(self):
        cov = coverage_by_technique(SAMPLE)
        total = sum(
            cov.share(t) for t in DetectionTechnique
        )
        assert total == pytest.approx(1.0)

    def test_coverage_value(self):
        cov = coverage_by_technique(SAMPLE)
        assert cov.coverage == pytest.approx(3 / 5)

    def test_by_benchmark_includes_avg(self):
        groups = coverage_by_benchmark(SAMPLE)
        assert set(groups) == {"mcf", "postmark", "AVG"}
        assert groups["AVG"].total == 5
        assert groups["postmark"].total == 1

    def test_empty_coverage(self):
        cov = coverage_by_technique(())
        assert cov.coverage == 0.0 and cov.row("x")


class TestLongLatency:
    def test_breakdown_counts(self):
        breakdown = long_latency_breakdown(SAMPLE)
        assert breakdown[FailureClass.APP_SDC] == (1, 2)
        assert breakdown[FailureClass.ONE_VM_FAILURE] == (0, 1)
        assert breakdown[FailureClass.APP_CRASH] == (0, 0)


class TestUndetected:
    def test_breakdown_shares(self):
        shares = undetected_breakdown(SAMPLE)
        assert shares[UndetectedKind.TIME_VALUES] == pytest.approx(0.5)
        assert shares[UndetectedKind.MIS_CLASSIFY] == pytest.approx(0.5)
        assert shares[UndetectedKind.STACK_VALUES] == 0.0

    def test_no_undetected_raises(self):
        with pytest.raises(CampaignConfigError):
            undetected_breakdown((record(),))


class TestLatencyStudy:
    def test_per_technique_cdfs(self):
        study = LatencyStudy.from_records(SAMPLE)
        assert study.fraction_within(DetectionTechnique.HW_EXCEPTION, 5) == 1.0
        assert study.fraction_within(DetectionTechnique.VM_TRANSITION, 100) == 0.0
        assert study.fraction_within(DetectionTechnique.VM_TRANSITION, 700) == 1.0

    def test_table_renders(self):
        text = LatencyStudy.from_records(SAMPLE).table([100, 700])
        assert "hw_exception" in text and "700" in text

    def test_no_detections_raises(self):
        undetected = (record(technique=DetectionTechnique.UNDETECTED, latency=None),)
        with pytest.raises(CampaignConfigError):
            LatencyStudy.from_records(undetected)


class TestOverheadModel:
    def test_fig7_ordering_postmark_worst_bzip2_best(self):
        model = PerfOverheadModel()
        studies = {p.name: model.study(p, seed=4) for p in BENCHMARKS}
        assert studies["postmark"].mean_full == max(s.mean_full for s in studies.values())
        assert studies["bzip2"].mean_full == min(s.mean_full for s in studies.values())

    def test_runtime_only_is_nearly_free(self):
        model = PerfOverheadModel()
        study = model.study(get_profile("postmark"), seed=4)
        assert study.mean_runtime_only < 0.1 * study.mean_full
        assert study.mean_runtime_only < 0.005

    def test_magnitudes_in_paper_band(self):
        """Average around a few percent, maxima near 10% for the worst case."""
        model = PerfOverheadModel()
        studies = [model.study(p, seed=4) for p in BENCHMARKS]
        average = sum(s.mean_full for s in studies) / len(studies)
        assert 0.005 < average < 0.08
        assert max(s.max_full for s in studies) < 0.30

    def test_deterministic(self):
        model = PerfOverheadModel()
        a = model.study(get_profile("x264"), seed=7)
        b = model.study(get_profile("x264"), seed=7)
        assert (a.runtime_plus_transition == b.runtime_plus_transition).all()

    def test_validation(self):
        with pytest.raises(CampaignConfigError):
            PerfOverheadModel(runs=0)
