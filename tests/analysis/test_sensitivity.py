"""Per-register and per-bit-band sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    bit_band_sensitivity,
    register_sensitivity,
)
from repro.errors import CampaignConfigError
from repro.faults import CampaignConfig, FaultInjectionCampaign


@pytest.fixture(scope="module")
def records():
    cfg = CampaignConfig(benchmarks=("postmark", "mcf"), n_injections=1200, seed=21)
    return FaultInjectionCampaign(cfg).run().records


class TestRegisterSensitivity:
    def test_rows_partition_all_trials(self, records):
        rows = register_sensitivity(records)
        assert sum(r.trials for r in rows.values()) == len(records)

    def test_rip_is_maximally_sensitive(self, records):
        """Instruction-pointer flips always activate (control transfers
        through RIP on the very next fetch)."""
        rows = register_sensitivity(records)
        rip = rows.get("rip")
        assert rip is not None
        assert rip.activation_rate == 1.0
        assert rip.manifestation_rate > 0.8

    def test_environment_pointers_are_highly_sensitive(self, records):
        """rbp/r12/r13 hold the hypervisor's structure bases — flips there
        manifest far more often than in a scratch register like r14."""
        rows = register_sensitivity(records)
        for pointer in ("rbp", "r13"):
            if pointer in rows and "r14" in rows:
                assert (
                    rows[pointer].manifestation_rate
                    >= rows["r14"].manifestation_rate
                )

    def test_rows_render(self, records):
        rows = register_sensitivity(records)
        text = rows["rip"].row()
        assert "rip" in text and "coverage" in text

    def test_empty_rejected(self):
        with pytest.raises(CampaignConfigError):
            register_sensitivity(())


class TestBitBandSensitivity:
    def test_bands_partition_all_trials(self, records):
        rows = bit_band_sensitivity(records)
        assert sum(r.trials for r in rows.values()) == len(records)
        assert set(rows) <= {"0-15", "16-31", "32-47", "48-63"}

    def test_high_bits_detected_more_reliably(self, records):
        """Canonical-form-breaking flips (48-63) mostly die in #GP/#PF:
        coverage there should beat the low data-bit band."""
        rows = bit_band_sensitivity(records)
        if rows["48-63"].manifested > 20 and rows["0-15"].manifested > 20:
            assert rows["48-63"].coverage >= rows["0-15"].coverage - 0.05
