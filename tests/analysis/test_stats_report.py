"""Box stats, CDFs, and report tables."""

import numpy as np
import pytest

from repro.analysis import BoxStats, Cdf, ComparisonTable, format_percent
from repro.errors import CampaignConfigError


class TestBoxStats:
    def test_five_number_summary(self):
        stats = BoxStats.from_samples(np.arange(1, 102))  # 1..101
        assert stats.minimum == 1 and stats.maximum == 101
        assert stats.median == 51
        assert stats.q25 == 26 and stats.q75 == 76
        assert stats.n == 101

    def test_single_sample(self):
        stats = BoxStats.from_samples(np.array([42.0]))
        assert stats.minimum == stats.median == stats.maximum == 42.0

    def test_empty_rejected(self):
        with pytest.raises(CampaignConfigError):
            BoxStats.from_samples(np.array([]))

    def test_row_formats(self):
        row = BoxStats.from_samples(np.array([1000.0, 2000.0, 3000.0])).row("mcf")
        assert row.startswith("mcf") and "2,000" in row


class TestCdf:
    def test_monotone_and_bounded(self):
        cdf = Cdf.from_samples([5, 1, 3, 2, 4])
        assert (np.diff(cdf.fractions) >= 0).all()
        assert cdf.fractions[0] > 0 and cdf.fractions[-1] == 1.0

    def test_fraction_at(self):
        cdf = Cdf.from_samples([10, 20, 30, 40])
        assert cdf.fraction_at(5) == 0.0
        assert cdf.fraction_at(20) == 0.5
        assert cdf.fraction_at(100) == 1.0

    def test_percentile_inverse(self):
        cdf = Cdf.from_samples(range(1, 101))
        assert cdf.percentile(0.95) == 95
        assert cdf.percentile(1.0) == 100

    def test_percentile_validation(self):
        cdf = Cdf.from_samples([1])
        with pytest.raises(CampaignConfigError):
            cdf.percentile(0.0)
        with pytest.raises(CampaignConfigError):
            cdf.percentile(1.5)

    def test_percentile_rejects_negative_quantile(self):
        cdf = Cdf.from_samples([1, 2, 3])
        with pytest.raises(CampaignConfigError):
            cdf.percentile(-0.5)

    def test_percentile_smallest_quantile_hits_minimum(self):
        # Any q in (0, 1/n] must return the smallest sample, never
        # underflow the value array.
        cdf = Cdf.from_samples([10, 20, 30, 40])
        assert cdf.percentile(1e-9) == 10
        assert cdf.percentile(0.25) == 10

    def test_percentile_matches_numpy_inverted_cdf(self):
        """Pin the empirical percentile to numpy's inverted-CDF method.

        The streaming service reuses ``Cdf`` for its latency summaries
        (p50/p95/p99 over histogram buckets), so the definition must stay
        aligned with the standard empirical quantile.
        """
        rng = np.random.default_rng(7)
        samples = rng.exponential(0.002, 1000)
        cdf = Cdf.from_samples(samples)
        for q in (0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert cdf.percentile(q) == pytest.approx(
                float(np.percentile(samples, q * 100, method="inverted_cdf"))
            )

    def test_table_pairs(self):
        cdf = Cdf.from_samples([100, 200, 700])
        table = cdf.table([100, 700])
        assert table == [(100, pytest.approx(1 / 3)), (700, pytest.approx(1.0))]

    def test_empty_rejected(self):
        with pytest.raises(CampaignConfigError):
            Cdf.from_samples([])


class TestComparisonTable:
    def test_render_contains_rows(self):
        table = ComparisonTable("Fig. 8 overall coverage")
        table.add_percent("average coverage", 0.976, 0.921, "shape preserved")
        table.add("who wins", "hw exceptions", "hw exceptions")
        text = table.render()
        assert "Fig. 8" in text
        assert "97.6%" in text and "92.1%" in text
        assert "shape preserved" in text

    def test_empty_table(self):
        assert "(no rows)" in ComparisonTable("empty").render()

    def test_format_percent_none(self):
        assert format_percent(None) == "---"
        assert format_percent(0.123) == "12.3%"
