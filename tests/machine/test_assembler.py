"""Assembler: builder API, text syntax, label resolution, listings."""

import pytest

from repro.errors import AssemblyError
from repro.machine import Assembler, INSTRUCTION_BYTES, Op, parse_asm


class TestBuilder:
    def test_labels_resolve_to_byte_addresses(self):
        asm = Assembler(base=0x1000)
        asm.label("start")
        asm.nop()
        asm.label("second")
        asm.nop()
        prog = asm.assemble()
        assert prog.address_of("start") == 0x1000
        assert prog.address_of("second") == 0x1000 + INSTRUCTION_BYTES

    def test_forward_reference_resolves(self):
        asm = Assembler()
        asm.jmp("end")
        asm.nop()
        asm.label("end")
        asm.vmentry()
        prog = asm.assemble()
        assert prog.instructions[0].target == 2 * INSTRUCTION_BYTES

    def test_unresolved_label_raises(self):
        asm = Assembler()
        asm.jmp("nowhere")
        with pytest.raises(AssemblyError, match="nowhere"):
            asm.assemble()

    def test_duplicate_label_raises(self):
        asm = Assembler()
        asm.label("x")
        with pytest.raises(AssemblyError, match="duplicate"):
            asm.label("x")

    def test_misaligned_base_rejected(self):
        with pytest.raises(AssemblyError):
            Assembler(base=0x1001)

    def test_here_tracks_position(self):
        asm = Assembler(base=0x2000)
        assert asm.here == 0x2000
        asm.nop()
        assert asm.here == 0x2000 + INSTRUCTION_BYTES

    def test_invalid_condition_code_rejected(self):
        asm = Assembler()
        with pytest.raises(AssemblyError):
            asm.jcc("zz", "somewhere")

    def test_unknown_register_rejected(self):
        asm = Assembler()
        with pytest.raises(AssemblyError):
            asm.mov("eax", 1)


class TestTextSyntax:
    def test_full_program_parses(self):
        prog = parse_asm(
            """
            ; a comment-only line
            entry:
                mov rax, 0x10
                load rbx, [rbp+8]
                store [rbp-8], rbx
                add rax, rbx
                cmp rax, 100
                jl entry
                call helper
                vmentry
            helper:
                assert_range rax, 0, 0xff, bound
                ret
            """
        )
        assert prog.instructions[0].op is Op.MOV
        assert prog.instructions[2].dst.disp == -8
        assert prog.address_of("helper") == 8 * INSTRUCTION_BYTES

    def test_parse_all_jcc_spellings(self):
        for cond in ("e", "ne", "l", "le", "g", "ge", "b", "ae", "be", "a", "s", "ns"):
            prog = parse_asm(f"t:\n j{cond} t")
            assert prog.instructions[0].cond == cond

    def test_hex_and_decimal_immediates(self):
        prog = parse_asm("mov rax, 0x20\nmov rbx, 32")
        assert prog.instructions[0].src.value == prog.instructions[1].src.value

    def test_bad_mnemonic_raises(self):
        with pytest.raises(AssemblyError, match="frobnicate"):
            parse_asm("frobnicate rax")

    def test_wrong_operand_count_raises(self):
        with pytest.raises(AssemblyError):
            parse_asm("mov rax")

    def test_bad_memory_operand_raises(self):
        with pytest.raises(AssemblyError):
            parse_asm("load rax, rbp+8")

    def test_assert_directives(self):
        prog = parse_asm("assert_range rax, 0, 31, trapno\nassert_eq rbx, 1, idle")
        a, b = prog.instructions
        assert (a.lo, a.hi, a.assert_id) == (0, 31, "trapno")
        assert (b.lo, b.assert_id) == (1, "idle")


class TestProgram:
    def test_instruction_at_maps_addresses(self):
        prog = parse_asm("nop\nnop\nvmentry", base=0x1000)
        assert prog.instruction_at(0x1000).op is Op.NOP
        assert prog.instruction_at(0x1008).op is Op.VMENTRY

    def test_instruction_at_misaligned_is_none(self):
        prog = parse_asm("nop\nnop", base=0x1000)
        assert prog.instruction_at(0x1002) is None

    def test_instruction_at_out_of_range_is_none(self):
        prog = parse_asm("nop", base=0x1000)
        assert prog.instruction_at(0x0FFC) is None
        assert prog.instruction_at(0x1004) is None

    def test_size_and_end(self):
        prog = parse_asm("nop\nnop\nnop", base=0x1000)
        assert prog.size == 12 and prog.end == 0x100C and len(prog) == 3

    def test_listing_contains_labels_and_addresses(self):
        prog = parse_asm("main:\n mov rax, 1\n vmentry", base=0x1000)
        listing = prog.listing()
        assert "main:" in listing and "0x00001000" in listing and "vmentry" in listing
