"""Exception-vector taxonomy and the fatal/benign parser."""

import pytest

from repro.machine import (
    FATAL_VECTORS,
    HardwareException,
    PageFaultKind,
    Vector,
    classify_exception,
)


class TestVectors:
    def test_real_x86_vector_numbers(self):
        assert Vector.DIVIDE_ERROR == 0
        assert Vector.INVALID_OPCODE == 6
        assert Vector.DOUBLE_FAULT == 8
        assert Vector.GENERAL_PROTECTION == 13
        assert Vector.PAGE_FAULT == 14
        assert Vector.MACHINE_CHECK == 18

    def test_fatal_set_contents(self):
        assert Vector.INVALID_OPCODE in FATAL_VECTORS
        assert Vector.DOUBLE_FAULT in FATAL_VECTORS
        assert Vector.PAGE_FAULT not in FATAL_VECTORS  # needs sub-parsing
        assert Vector.GENERAL_PROTECTION not in FATAL_VECTORS


class TestParser:
    """Section III.A: 'hardware exceptions should be parsed first to filter
    out non-fatal ones'."""

    def test_always_fatal_vectors(self):
        for vector in FATAL_VECTORS:
            verdict = classify_exception(HardwareException(vector, rip=0x10))
            assert verdict.fatal, vector

    @pytest.mark.parametrize("kind", [PageFaultKind.MINOR, PageFaultKind.MAJOR])
    def test_paging_activity_is_benign(self, kind):
        exc = HardwareException(Vector.PAGE_FAULT, rip=0x10, address=0x2000, kind=kind)
        verdict = classify_exception(exc)
        assert not verdict.fatal
        assert "page fault" in verdict.reason

    @pytest.mark.parametrize(
        "kind", [PageFaultKind.FATAL_UNMAPPED, PageFaultKind.FATAL_PROTECTION]
    )
    def test_bad_mappings_are_fatal(self, kind):
        exc = HardwareException(Vector.PAGE_FAULT, rip=0x10, address=0x2000, kind=kind)
        assert classify_exception(exc).fatal

    def test_guest_induced_gp_is_benign(self):
        """Trap-and-emulate: a guest cpuid arrives as #GP with no fault
        address — legal in correct executions."""
        exc = HardwareException(Vector.GENERAL_PROTECTION, rip=0x10)
        verdict = classify_exception(exc)
        assert not verdict.fatal
        assert "trap-and-emulate" in verdict.reason

    def test_host_gp_with_address_is_fatal(self):
        exc = HardwareException(
            Vector.GENERAL_PROTECTION, rip=0x10, address=0x8000_0000_0000_0000
        )
        assert classify_exception(exc).fatal

    @pytest.mark.parametrize(
        "vector", [Vector.DEBUG, Vector.BREAKPOINT, Vector.OVERFLOW]
    )
    def test_debug_traps_are_benign(self, vector):
        assert not classify_exception(HardwareException(vector, rip=0)).fatal

    @pytest.mark.parametrize(
        "vector", [Vector.BOUND_RANGE, Vector.FP_ERROR, Vector.ALIGNMENT_CHECK,
                   Vector.SIMD_ERROR]
    )
    def test_unexpected_host_vectors_default_to_fatal(self, vector):
        assert classify_exception(HardwareException(vector, rip=0)).fatal

    def test_exception_message_carries_context(self):
        exc = HardwareException(
            Vector.PAGE_FAULT, rip=0x1234, address=0x9000,
            kind=PageFaultKind.FATAL_UNMAPPED, detail="unmapped address",
        )
        assert "PAGE_FAULT" in str(exc) and "0x1234" in str(exc)
        assert exc.address == 0x9000
