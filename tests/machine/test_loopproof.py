"""Runaway-loop induction proofs: proved watchdog outcomes ≡ concrete spins.

When a faulty run spins, the probe measures two periods of the cycle and
attempts an induction proof that it reaches the watchdog budget, settling
the trial without executing the remaining iterations.  The proof must be
*exact*: every record — failure class, detection latency, counter sample,
path hash — has to be bit-identical to concretely executing the loop to
exhaustion, and a terminating loop must never be cut short.  These tests
run the same fixed-seed campaign slice with the prover enabled and
force-disabled (``CPUCore.loop_proof``) and require both identity and
that proofs actually fired.
"""

import pytest

from repro.faults import CampaignConfig
from repro.faults.campaign import run_benchmark_groups
from repro.hypervisor import XenHypervisor

CONFIG = CampaignConfig(n_injections=400, seed=5)


def _machine(loop_proof: bool) -> XenHypervisor:
    hv = XenHypervisor(
        n_domains=CONFIG.n_domains, seed=CONFIG.seed,
        light_trace=not CONFIG.trace, translate=CONFIG.translate,
    )
    for core in hv.cores:
        core.loop_proof = loop_proof
    return hv


class TestProverDifferential:
    @pytest.fixture(scope="class")
    def run(self):
        proved = _machine(True)
        concrete = _machine(False)
        records = {}
        for benchmark in CONFIG.benchmarks[:2]:
            records[benchmark] = (
                run_benchmark_groups(CONFIG, benchmark, 0, 17, hv=proved),
                run_benchmark_groups(CONFIG, benchmark, 0, 17, hv=concrete),
            )
        return proved, concrete, records

    def test_records_identical_with_prover_disabled(self, run):
        _, _, records = run
        for benchmark, (on, off) in records.items():
            assert on == off, f"prover changed records for {benchmark}"

    def test_proofs_actually_fired(self, run):
        proved, concrete, _ = run
        assert sum(c.proved_hangs for c in proved.cores) > 0
        assert sum(c.proved_hangs for c in concrete.cores) == 0

    def test_proofs_skip_real_execution(self, run):
        proved, concrete, _ = run

        def executed(hv):
            return sum(
                c.interpreted_instructions + c.translated_instructions
                for c in hv.cores
            )

        skipped = sum(c.proved_hang_instructions for c in proved.cores)
        assert skipped > 0
        # The proved machine must have executed fewer instructions by at
        # least the amount its proofs claim to have skipped.
        assert executed(concrete) - executed(proved) >= skipped
