"""RFLAGS semantics: status-flag updates and condition evaluation."""

import pytest

from repro.machine.flags import (
    CF,
    CONDITION_CODES,
    OF,
    PF,
    SF,
    ZF,
    condition_met,
    update_flags_arith,
    update_flags_logic,
)

MASK64 = (1 << 64) - 1


class TestLogicFlags:
    def test_zero_result_sets_zf(self):
        assert update_flags_logic(0, 0) & ZF

    def test_nonzero_clears_zf(self):
        assert not update_flags_logic(ZF, 5) & ZF

    def test_sign_bit_sets_sf(self):
        assert update_flags_logic(0, 1 << 63) & SF

    def test_logic_clears_cf_and_of(self):
        assert update_flags_logic(CF | OF, 1) & (CF | OF) == 0

    def test_parity_even_bits_in_low_byte(self):
        assert update_flags_logic(0, 0b11) & PF          # two bits: even
        assert not update_flags_logic(0, 0b111) & PF     # three bits: odd

    def test_parity_only_looks_at_low_byte(self):
        assert update_flags_logic(0, 0x100) & PF  # low byte zero -> even


class TestArithFlags:
    def test_unsigned_carry_on_add_overflow(self):
        a = MASK64
        flags = update_flags_arith(0, a + 1, a, 1, subtraction=False)
        assert flags & CF and flags & ZF

    def test_borrow_on_subtract_below_zero(self):
        flags = update_flags_arith(0, 3 - 5, 3, 5, subtraction=True)
        assert flags & CF

    def test_signed_overflow_positive_plus_positive(self):
        a = (1 << 63) - 1  # INT64_MAX
        flags = update_flags_arith(0, a + 1, a, 1, subtraction=False)
        assert flags & OF and flags & SF

    def test_no_signed_overflow_mixed_signs_add(self):
        a, b = (1 << 63), 1  # negative + positive can't overflow
        flags = update_flags_arith(0, a + b, a, b, subtraction=False)
        assert not flags & OF

    def test_signed_overflow_subtract(self):
        a, b = (1 << 63), 1  # INT64_MIN - 1 overflows
        flags = update_flags_arith(0, a - b, a, b, subtraction=True)
        assert flags & OF

    def test_equal_compare_sets_zf_only_sign_flags(self):
        flags = update_flags_arith(0, 7 - 7, 7, 7, subtraction=True)
        assert flags & ZF and not flags & CF and not flags & SF


class TestConditions:
    @pytest.mark.parametrize("cond", CONDITION_CODES)
    def test_every_condition_evaluates(self, cond):
        assert condition_met(cond, 0) in (True, False)

    def test_je_jne_are_complements(self):
        for flags in (0, ZF, SF, ZF | SF):
            assert condition_met("e", flags) != condition_met("ne", flags)

    def test_signed_less_uses_sf_xor_of(self):
        assert condition_met("l", SF)
        assert condition_met("l", OF)
        assert not condition_met("l", SF | OF)
        assert not condition_met("l", 0)

    def test_unsigned_below_uses_cf(self):
        assert condition_met("b", CF)
        assert not condition_met("b", 0)

    def test_le_is_l_or_e(self):
        assert condition_met("le", ZF)
        assert condition_met("le", SF)
        assert not condition_met("le", 0)

    def test_ge_complements_l(self):
        for flags in (0, SF, OF, SF | OF, ZF):
            assert condition_met("ge", flags) != condition_met("l", flags)

    def test_compare_then_condition_signed(self):
        # 3 < 5 signed
        flags = update_flags_arith(0, 3 - 5, 3, 5, subtraction=True)
        assert condition_met("l", flags) and not condition_met("g", flags)

    def test_compare_then_condition_unsigned_wraparound(self):
        # -1 (as unsigned max) is above 5 unsigned but below signed
        a = MASK64
        flags = update_flags_arith(0, a - 5, a, 5, subtraction=True)
        assert condition_met("a", flags)
        assert condition_met("l", flags)
