"""Register-file behaviour: access, masking, flips, snapshots."""

import pytest

from repro.errors import MachineConfigError
from repro.machine import ALL_REGISTERS, GPR_NAMES, MASK64, RegisterFile


class TestBasicAccess:
    def test_registers_start_at_zero(self):
        regs = RegisterFile()
        assert all(value == 0 for _, value in regs)

    def test_write_then_read_roundtrip(self):
        regs = RegisterFile()
        regs["rax"] = 0xDEADBEEF
        assert regs["rax"] == 0xDEADBEEF

    def test_write_truncates_to_64_bits(self):
        regs = RegisterFile()
        regs["rbx"] = (1 << 64) + 5
        assert regs["rbx"] == 5

    def test_negative_write_wraps(self):
        regs = RegisterFile()
        regs["rcx"] = -1
        assert regs["rcx"] == MASK64

    def test_index_access_matches_name_access(self):
        regs = RegisterFile()
        regs["r11"] = 77
        assert regs.read_index(RegisterFile.index_of("r11")) == 77

    def test_unknown_register_name_rejected(self):
        with pytest.raises(MachineConfigError):
            RegisterFile.index_of("eax")  # 32-bit aliases are not modeled

    def test_register_roster(self):
        assert len(GPR_NAMES) == 16
        assert "rip" in ALL_REGISTERS and "rflags" in ALL_REGISTERS
        assert len(ALL_REGISTERS) == 18


class TestFaultPrimitive:
    def test_flip_bit_sets_then_clears(self):
        regs = RegisterFile()
        assert regs.flip_bit("rdx", 7) == 1 << 7
        assert regs.flip_bit("rdx", 7) == 0

    def test_flip_high_bit(self):
        regs = RegisterFile()
        regs.flip_bit("rsi", 63)
        assert regs["rsi"] == 1 << 63

    def test_flip_bit_out_of_range_rejected(self):
        regs = RegisterFile()
        with pytest.raises(MachineConfigError):
            regs.flip_bit("rax", 64)
        with pytest.raises(MachineConfigError):
            regs.flip_bit("rax", -1)


class TestSnapshotRestore:
    def test_snapshot_restore_roundtrip(self):
        regs = RegisterFile()
        regs["rax"], regs["rip"] = 1, 0x4000
        snap = regs.snapshot()
        regs["rax"] = 999
        regs.restore(snap)
        assert regs["rax"] == 1 and regs["rip"] == 0x4000

    def test_restore_rejects_wrong_length(self):
        with pytest.raises(MachineConfigError):
            RegisterFile().restore((1, 2, 3))

    def test_diff_reports_only_changed(self):
        a, b = RegisterFile(), RegisterFile()
        a["rax"], b["rax"] = 1, 2
        a["rbx"] = b["rbx"] = 42
        assert a.diff(b) == {"rax": (1, 2)}

    def test_reset_zeroes_everything(self):
        regs = RegisterFile()
        regs["r15"] = 9
        regs.reset()
        assert regs["r15"] == 0
