"""COW checkpoints, dirty-page accounting, and resumable execution.

The copy-on-write checkpoint/restore path is the trial hot path of the
fault-injection campaign; the eager full-copy implementation is retained as
the differential oracle (``checkpoint_full``/``restore_full``) and these
tests hold the two observationally identical over randomized write
sequences, nested checkpoint generations, and interleaved restores.
"""

import numpy as np
import pytest

from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.machine import (
    CPUCore,
    Memory,
    MemoryCheckpoint,
    PAGE_SIZE,
    Region,
    parse_asm,
)


def make_memory() -> Memory:
    mem = Memory()
    mem.map_region(Region("heap", 0x10000, 8 * PAGE_SIZE))
    mem.map_region(Region("stack", 0x40000, 4 * PAGE_SIZE))
    return mem


def random_writes(mem: Memory, rng: np.random.Generator, n: int) -> None:
    """Apply ``n`` random word writes across both mapped regions."""
    for _ in range(n):
        if rng.integers(2):
            base, size = 0x10000, 8 * PAGE_SIZE
        else:
            base, size = 0x40000, 4 * PAGE_SIZE
        addr = base + int(rng.integers(0, size // 8)) * 8
        mem.write_u64(addr, int(rng.integers(0, 1 << 63)))


class TestCowEquivalence:
    """checkpoint()/restore() must match the eager full-copy oracle."""

    @pytest.mark.parametrize("seed", range(5))
    def test_restore_matches_full_copy_oracle(self, seed):
        mem = make_memory()
        rng = np.random.default_rng(seed)
        random_writes(mem, rng, 40)

        cow = mem.checkpoint()
        oracle = mem.checkpoint_full()

        random_writes(mem, rng, 60)
        assert mem.checkpoint_full() != oracle  # the writes did something

        mem.restore(cow)
        assert mem.checkpoint_full() == oracle

    @pytest.mark.parametrize("seed", range(3))
    def test_nested_generations_restore_in_any_order(self, seed):
        """Checkpoints taken at different depths all restore correctly."""
        mem = make_memory()
        rng = np.random.default_rng(100 + seed)
        snaps: list[tuple[MemoryCheckpoint, dict[int, bytes]]] = []
        for _ in range(4):
            random_writes(mem, rng, 25)
            snaps.append((mem.checkpoint(), mem.checkpoint_full()))
        # Restore in a shuffled order, diverging in between each restore.
        for i in rng.permutation(len(snaps)):
            random_writes(mem, rng, 15)
            cow, oracle = snaps[i]
            mem.restore(cow)
            assert mem.checkpoint_full() == oracle

    def test_pages_materialized_after_checkpoint_are_dropped(self):
        mem = make_memory()
        snap = mem.checkpoint()
        mem.write_u64(0x40000, 7)  # materializes a fresh stack page
        assert 0x40000 in mem.touched_pages()
        mem.restore(snap)
        assert 0x40000 not in mem.touched_pages()
        assert mem.read_u64(0x40000) == 0  # zero-filled on demand again

    def test_restore_accepts_full_copy_snapshot(self):
        """The eager dict form stays drop-in interchangeable."""
        mem = make_memory()
        mem.write_u64(0x10000, 123)
        oracle = mem.checkpoint_full()
        mem.write_u64(0x10000, 456)
        mem.restore(oracle)  # plain dict, not a MemoryCheckpoint
        assert mem.read_u64(0x10000) == 123

    def test_checkpoint_equality_is_content_based(self):
        a = make_memory()
        b = make_memory()
        for mem in (a, b):
            mem.write_u64(0x10010, 99)
        assert a.checkpoint() == b.checkpoint()
        b.write_u64(0x10010, 100)
        assert a.checkpoint() != b.checkpoint()


class TestDirtyAccounting:
    def test_checkpoint_clears_dirty_set(self):
        mem = make_memory()
        mem.write_u64(0x10000, 1)
        assert mem.dirty_page_count == 1
        mem.checkpoint()
        assert mem.dirty_page_count == 0

    def test_writes_dirty_exactly_their_pages(self):
        mem = make_memory()
        mem.checkpoint()
        mem.write_u64(0x10000, 1)
        mem.write_u64(0x10008, 2)  # same page: still one dirty page
        assert mem.dirty_pages() == (0x10000,)
        mem.write_u64(0x10000 + PAGE_SIZE, 3)
        assert mem.dirty_pages() == (0x10000, 0x10000 + PAGE_SIZE)

    def test_reads_do_not_dirty_existing_pages(self):
        mem = make_memory()
        mem.write_u64(0x10000, 1)
        mem.checkpoint()
        mem.read_u64(0x10000)
        assert mem.dirty_page_count == 0

    def test_checkpoint_shares_clean_page_buffers(self):
        """Unchanged pages are the *same* bytes object across generations."""
        mem = make_memory()
        mem.write_u64(0x10000, 1)
        mem.write_u64(0x40000, 2)
        first = mem.checkpoint()
        mem.write_u64(0x40000, 3)  # dirty only the stack page
        second = mem.checkpoint()
        assert second.pages[0x10000] is first.pages[0x10000]
        assert second.pages[0x40000] is not first.pages[0x40000]

    def test_restore_cost_set_is_bounded_by_divergence(self):
        mem = make_memory()
        snap = mem.checkpoint()
        mem.write_u64(0x10000, 1)
        mem.restore(snap)
        # After the restore the live state is clean against the target.
        assert mem.dirty_page_count == 0
        assert mem.checkpoint_full() == {}


ASM = """
start:
    mov rax, 0
    mov rcx, 10
loop:
    add rax, 3
    store [rbp+0], rax
    dec rcx
    jne loop
    halt
"""


class TestResumableCore:
    def make_core(self):
        mem = Memory()
        mem.map_region(Region("text", 0x1000, PAGE_SIZE, writable=False, executable=True))
        mem.map_region(Region("data", 0x10000, PAGE_SIZE))
        mem.map_region(Region("stack", 0x20000, PAGE_SIZE))
        program = parse_asm(ASM, base=0x1000)
        core = CPUCore(0, mem)
        core.regs["rbp"] = 0x10000
        core.regs["rsp"] = 0x20000 + PAGE_SIZE
        return core, program, mem

    def test_resume_in_slices_matches_uninterrupted_run(self):
        core, program, _ = self.make_core()
        reference = core.run(program, 0x1000)

        core2, program2, _ = self.make_core()
        core2.begin(0x1000)
        stop = 0
        result = None
        while result is None:
            stop += 5
            result = core2.resume(program2, stop_at=stop)
        assert result == reference

    def test_checkpoint_restore_replays_suffix_bit_identically(self):
        core, program, mem = self.make_core()
        core.begin(0x1000)
        assert core.resume(program, stop_at=12) is None
        snap_core = core.checkpoint_core()
        snap_mem = mem.checkpoint()
        reference = core.resume(program)

        # Diverge, then rewind to the mid-run boundary and replay.
        mem.write_u64(0x10000, 0xDEAD)
        core.restore_core(snap_core)
        mem.restore(snap_mem)
        assert core.resume(program) == reference

    def test_core_checkpoint_index_is_dynamic_count(self):
        core, program, _ = self.make_core()
        core.begin(0x1000)
        core.resume(program, stop_at=7)
        assert core.checkpoint_core().index == 7


class TestMachineCheckpointLadder:
    """XenHypervisor-level ladder capture and resume."""

    @pytest.fixture(scope="class")
    def hv(self) -> XenHypervisor:
        return XenHypervisor(seed=17)

    def act(self, seq=0) -> Activation:
        return Activation(
            vmer=REGISTRY.by_name("mmu_update").vmer, args=(8, 1),
            domain_id=1, seq=seq,
        )

    def test_ladder_run_is_bit_identical_to_execute(self, hv):
        hv.reset()
        plain = hv.execute(self.act())
        hv.reset()
        laddered, ladder = hv.execute_with_ladder(self.act(), interval=16)
        assert laddered == plain
        assert ladder, "expected at least the index-0 rung"
        indices = [rung.index for rung in ladder]
        assert indices == sorted(indices)
        assert indices[0] == 0
        assert all(idx % 16 == 0 for idx in indices)

    def test_resume_from_every_rung_reaches_same_result(self, hv):
        hv.reset()
        reference, ladder = hv.execute_with_ladder(self.act(), interval=32)
        for rung in ladder:
            hv.restore_machine(rung)
            resumed = hv.resume_execution(self.act())
            assert resumed == reference
