"""Execution tracing and fault forensics tooling."""

import pytest

from repro.machine import CPUCore
from repro.machine.debug import diff_traces, trace_execution

from tests.conftest import STACK_TOP, TEXT_BASE


SOURCE = """
entry:
    mov rax, 0
    mov rbx, 3
loop:
    add rax, rbx
    dec rbx
    cmp rbx, 0
    jg loop
    vmentry
"""


class TestTraceExecution:
    def test_trace_covers_every_retired_instruction(self, cpu, assemble):
        prog = assemble(SOURCE)
        trace = trace_execution(cpu, prog, prog.address_of("entry"))
        assert trace.event == "vmentry"
        assert len(trace) == cpu.tracer.count - 1 or len(trace) >= 10

    def test_trace_entries_disassemble(self, cpu, assemble):
        prog = assemble(SOURCE)
        trace = trace_execution(cpu, prog, prog.address_of("entry"))
        assert trace.entries[0].text.startswith("mov")
        assert all(e.text != "<invalid>" for e in trace.entries)

    def test_light_mode_restored_after_tracing(self, cpu, assemble):
        prog = assemble(SOURCE)
        assert cpu.tracer.light
        trace_execution(cpu, prog, prog.address_of("entry"))
        assert cpu.tracer.light

    def test_trace_captures_exception_event(self, cpu, assemble):
        prog = assemble("entry:\n mov rbp, 0x900000\n load rax, [rbp]\n vmentry")
        trace = trace_execution(cpu, prog, prog.address_of("entry"))
        assert "HardwareException" in trace.event
        assert len(trace) == 2  # mov + the faulting load

    def test_render_is_readable_and_truncates(self, cpu, assemble):
        prog = assemble(SOURCE)
        trace = trace_execution(cpu, prog, prog.address_of("entry"))
        text = trace.render(limit=3)
        assert "mov" in text and "more instructions" in text and "vmentry" in text


class TestDiffTraces:
    def make(self, memory, assemble, source, flip=None):
        prog = assemble(source)
        core = CPUCore(0, memory)
        core.regs["rsp"] = STACK_TOP
        if flip:
            core.schedule_register_flip(*flip)
        return trace_execution(core, prog, prog.address_of("entry"))

    def test_identical_traces(self, memory, assemble):
        a = self.make(memory, assemble, SOURCE)
        b = self.make(memory, assemble, SOURCE)
        assert diff_traces(a, b) == "traces are identical"

    def test_divergence_point_is_located(self, memory, assemble):
        golden = self.make(memory, assemble, SOURCE)
        faulty = self.make(memory, assemble, SOURCE, flip=(3, "rbx", 2))
        report = diff_traces(golden, faulty)
        assert "divergence" in report or "continues for" in report

    def test_data_only_difference_reports_registers(self, memory, assemble):
        source = "entry:\n mov rax, 1\n mov rbx, rax\n vmentry"
        golden = self.make(memory, assemble, source)
        faulty = self.make(memory, assemble, source, flip=(1, "rax", 5))
        report = diff_traces(golden, faulty)
        assert "final registers differ" in report
        assert "rax" in report
