"""Property-based tests (hypothesis) for machine-layer invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    ALL_REGISTERS,
    CPUCore,
    MASK64,
    Memory,
    PAGE_SIZE,
    Region,
    RegisterFile,
    Tracer,
    parse_asm,
)
from repro.machine.flags import condition_met, update_flags_arith

registers = st.sampled_from(ALL_REGISTERS)
bits = st.integers(min_value=0, max_value=63)
u64 = st.integers(min_value=0, max_value=MASK64)


class TestRegisterProperties:
    @given(reg=registers, bit=bits, value=u64)
    def test_flip_is_involution(self, reg, bit, value):
        regs = RegisterFile()
        regs[reg] = value
        regs.flip_bit(reg, bit)
        regs.flip_bit(reg, bit)
        assert regs[reg] == value

    @given(reg=registers, bit=bits, value=u64)
    def test_flip_changes_exactly_one_bit(self, reg, bit, value):
        regs = RegisterFile()
        regs[reg] = value
        flipped = regs.flip_bit(reg, bit)
        assert (flipped ^ value) == (1 << bit)

    @given(values=st.lists(u64, min_size=18, max_size=18))
    def test_snapshot_restore_roundtrip(self, values):
        regs = RegisterFile()
        for name, v in zip(ALL_REGISTERS, values):
            regs[name] = v
        snap = regs.snapshot()
        for name in ALL_REGISTERS:
            regs[name] = 0
        regs.restore(snap)
        assert list(dict(regs).values()) == values


class TestFlagProperties:
    @given(a=u64, b=u64)
    def test_compare_total_order_signed(self, a, b):
        """Exactly one of <, ==, > holds under signed comparison."""
        flags = update_flags_arith(0, a - b, a, b, subtraction=True)
        lt = condition_met("l", flags)
        eq = condition_met("e", flags)
        gt = condition_met("g", flags)
        assert [lt, eq, gt].count(True) == 1
        # Cross-check against Python's signed interpretation.
        sa = a - (1 << 64) if a >> 63 else a
        sb = b - (1 << 64) if b >> 63 else b
        assert lt == (sa < sb) and eq == (sa == sb) and gt == (sa > sb)

    @given(a=u64, b=u64)
    def test_compare_total_order_unsigned(self, a, b):
        flags = update_flags_arith(0, a - b, a, b, subtraction=True)
        assert condition_met("b", flags) == (a < b)
        assert condition_met("ae", flags) == (a >= b)
        assert condition_met("a", flags) == (a > b)
        assert condition_met("be", flags) == (a <= b)


class TestMemoryProperties:
    @given(
        offset=st.integers(min_value=0, max_value=PAGE_SIZE * 2 - 8),
        value=u64,
    )
    def test_write_read_roundtrip_any_offset(self, offset, value):
        mem = Memory()
        mem.map_region(Region("heap", 0x10000, 2 * PAGE_SIZE))
        mem.write_u64(0x10000 + offset, value)
        assert mem.read_u64(0x10000 + offset) == value

    @given(
        writes=st.lists(
            st.tuples(st.integers(0, PAGE_SIZE // 8 - 1), u64), min_size=1, max_size=32
        )
    )
    def test_last_write_wins(self, writes):
        mem = Memory()
        mem.map_region(Region("heap", 0x10000, PAGE_SIZE))
        final = {}
        for slot, value in writes:
            mem.write_u64(0x10000 + slot * 8, value)
            final[slot] = value
        for slot, value in final.items():
            assert mem.read_u64(0x10000 + slot * 8) == value


class TestTracerProperties:
    @given(addresses=st.lists(u64, min_size=0, max_size=64))
    def test_identical_streams_hash_identically(self, addresses):
        a, b = Tracer(), Tracer()
        for addr in addresses:
            a.record(addr)
            b.record(addr)
        assert a.same_path(b)

    # Realistic instruction addresses: 4-byte aligned, below 2**32.  (For
    # fully adversarial 64-bit inputs FNV-1a has algebraic collisions — e.g.
    # xoring bit 63 commutes with multiplying by an odd prime — but no code
    # address pattern reaches them.)
    @given(
        addresses=st.lists(
            st.integers(0, (1 << 30) - 1).map(lambda i: i * 4),
            min_size=2,
            max_size=32,
            unique=True,
        )
    )
    def test_order_sensitivity(self, addresses):
        a, b = Tracer(), Tracer()
        for addr in addresses:
            a.record(addr)
        for addr in reversed(addresses):
            b.record(addr)
        assert not a.same_path(b)

    @given(address=u64, n=st.integers(min_value=1, max_value=100))
    def test_bulk_counts_match(self, address, n):
        t = Tracer()
        t.record_bulk(address, n)
        assert t.count == n

    @given(address=u64, n1=st.integers(1, 50), n2=st.integers(1, 50))
    def test_bulk_distinguishes_repeat_counts(self, address, n1, n2):
        a, b = Tracer(), Tracer()
        a.record_bulk(address, n1)
        b.record_bulk(address, n2)
        assert a.same_path(b) == (n1 == n2)


class TestExecutionDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        init=st.integers(min_value=0, max_value=50),
        step=st.integers(min_value=1, max_value=5),
    )
    def test_same_program_same_inputs_same_path(self, init, step):
        source = f"""
        entry:
            mov rax, {init}
            mov rbx, 0
        loop:
            add rbx, {step}
            dec rax
            cmp rax, 0
            jg loop
            vmentry
        """
        results = []
        for _ in range(2):
            mem = Memory()
            mem.map_region(Region("text", 0x10000, PAGE_SIZE, writable=False, executable=True))
            prog = parse_asm(source, base=0x10000)
            cpu = CPUCore(0, mem)
            res = cpu.run(prog, prog.address_of("entry"))
            results.append((res.instructions, res.path_hash, cpu.regs["rbx"]))
        assert results[0] == results[1]
