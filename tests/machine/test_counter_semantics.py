"""Pin the per-op performance-counter semantics.

The translation cache batches counter updates per basic block, so the
per-instruction contract the interpreter established must be written down and
enforced — otherwise batching could silently change counts.  The contract:

* every retired instruction bumps INST_RETIRED (including the faulting one —
  an instruction that raises still retires);
* JMP/JCC/CALL/RET bump BR_INST_RETIRED, *including* a CALL/RET whose stack
  access faults (the branch event precedes the memory access);
* LOAD/POP/RET bump MEM_LOADS and STORE/PUSH/CALL bump MEM_STORES exactly
  once — but only when the memory access succeeds: a faulting memory op
  retires no memory event (this is the call/ret double-count hazard audit:
  the memory bump must happen exactly once, after the access, on both the
  interpreter's fallback path and the translator's batched path);
* ``rep movs`` with ``rcx = k`` retires ``k`` extra iteration instructions,
  ``k`` loads and ``k`` stores on top of its own retirement;
* assertion ops evaluate their predicate before faulting, so a failing
  assertion still counts one assertion check.

Every case runs under both execution modes; the tables in
``repro.machine.isa`` (OP_MEM_LOADS/OP_MEM_STORES/BRANCH_OPS) are checked
against observed behaviour so neither path can drift from them.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationEvent
from repro.machine import translator
from repro.machine.assembler import Assembler
from repro.machine.cpu import CPUCore
from repro.machine.exceptions import AssertionViolation, HardwareException, Vector
from repro.machine.isa import BRANCH_OPS, Op, OP_MEM_LOADS, OP_MEM_STORES
from repro.machine.memory import Memory, PAGE_SIZE, Region

TEXT = 0x1000
DATA = 0x10000
STACK = 0x20000


def _run(build, translate, *, rsp=None):
    a = Assembler(base=TEXT)
    build(a)
    a.halt()
    program = a.assemble()
    mem = Memory()
    mem.map_region(Region("text", TEXT, PAGE_SIZE, writable=False, executable=True))
    mem.map_region(Region("data", DATA, PAGE_SIZE))
    mem.map_region(Region("stack", STACK, PAGE_SIZE))
    core = CPUCore(0, mem, translate=translate)
    core.regs.write("rbp", DATA)
    core.regs.write("rsp", STACK + PAGE_SIZE if rsp is None else rsp)
    exc = None
    try:
        core.run(program, TEXT)
    except SimulationEvent as event:
        exc = event
    return core, exc


@pytest.fixture(params=[False, True], ids=["interpreted", "translated"])
def translate(request):
    return request.param


@pytest.fixture(autouse=True)
def _eager_compilation(monkeypatch):
    # Every program here executes exactly once, so warmth-gated compilation
    # would leave the translated mode interpreting; compile on first dispatch.
    monkeypatch.setattr(translator, "COMPILE_THRESHOLD", 1)


class TestSuccessfulOps:
    """One successful execution of each op retires exactly its table entry."""

    CASES = {
        Op.MOV: lambda a: a.mov("rax", 5),
        Op.LOAD: lambda a: a.load("rax", "rbp", 8),
        Op.STORE: lambda a: a.store("rbp", 8, "rax"),
        Op.LEA: lambda a: a.lea("rax", "rbp", 8),
        Op.ADD: lambda a: a.add("rax", 1),
        Op.SUB: lambda a: a.sub("rax", 1),
        Op.AND: lambda a: a.and_("rax", 3),
        Op.OR: lambda a: a.or_("rax", 3),
        Op.XOR: lambda a: a.xor("rax", 3),
        Op.IMUL: lambda a: a.imul("rax", 3),
        Op.DIV: lambda a: (a.mov("rbx", 2), a.div("rax", "rbx")),
        Op.SHL: lambda a: a.shl("rax", 3),
        Op.SHR: lambda a: a.shr("rax", 3),
        Op.CMP: lambda a: a.cmp("rax", 1),
        Op.TEST: lambda a: a.test("rax", 1),
        Op.INC: lambda a: a.inc("rax"),
        Op.DEC: lambda a: a.dec("rax"),
        Op.JMP: lambda a: (a.jmp("next"), a.label("next")),
        Op.JCC: lambda a: (a.jcc("e", "next"), a.label("next")),
        Op.PUSH: lambda a: a.push("rax"),
        Op.POP: lambda a: (a.push("rax"), a.pop("rbx")),
        Op.RDTSC: lambda a: a.rdtsc(),
        Op.CPUID: lambda a: a.cpuid(),
        Op.ASSERT_RANGE: lambda a: (a.mov("rax", 1), a.assert_range("rax", 0, 9, "t")),
        Op.ASSERT_EQ: lambda a: (a.mov("rax", 1), a.assert_eq("rax", 1, "t")),
        Op.ASSERT_EQ_REG: lambda a: (a.mov("rbx", 0), a.mov("rcx", 0),
                                     a.assert_eq_reg("rbx", "rcx", "t")),
        Op.NOP: lambda a: a.nop(),
    }
    # Extra setup instructions each case emits before/around the op at test.
    EXTRA = {Op.DIV: 1, Op.POP: 1, Op.ASSERT_RANGE: 1, Op.ASSERT_EQ: 1,
             Op.ASSERT_EQ_REG: 2}
    # Memory events the setup itself contributes (POP's preparatory PUSH).
    EXTRA_STORES = {Op.POP: 1}

    @pytest.mark.parametrize("op", list(CASES), ids=lambda op: op.value)
    def test_counts_match_isa_tables(self, translate, op):
        core, exc = _run(self.CASES[op], translate)
        assert exc is None
        totals = core.pmu.totals()
        extra = self.EXTRA.get(op, 0)
        # +1 for the HALT terminator retirement.
        assert totals.instructions == 1 + extra + 1
        assert totals.branches == (1 if op in BRANCH_OPS else 0)
        assert totals.loads == OP_MEM_LOADS.get(op, 0)
        assert totals.stores == OP_MEM_STORES.get(op, 0) + self.EXTRA_STORES.get(op, 0)

    def test_call_ret_counts(self, translate):
        def build(a):
            a.call("leaf")
            a.jmp("done")
            a.label("leaf")
            a.ret()
            a.label("done")

        core, exc = _run(build, translate)
        assert exc is None
        totals = core.pmu.totals()
        assert totals.instructions == 4  # call, ret, jmp, halt
        assert totals.branches == 3
        # Exactly one store (CALL pushes the return address) and one load
        # (RET pops it) — the double-count hazard this file pins down.
        assert totals.stores == OP_MEM_STORES[Op.CALL] == 1
        assert totals.loads == OP_MEM_LOADS[Op.RET] == 1

    @pytest.mark.parametrize("words", [0, 1, 5])
    def test_rep_movs_counts_per_word(self, translate, words):
        def build(a):
            a.mov("rcx", words)
            a.mov("rsi", DATA)
            a.mov("rdi", DATA + 256)
            a.rep_movs()

        core, exc = _run(build, translate)
        assert exc is None
        totals = core.pmu.totals()
        # 3 movs + rep_movs + halt, plus one iteration per copied word.
        assert totals.instructions == 5 + words
        assert totals.loads == words
        assert totals.stores == words


class TestFaultingOps:
    """A faulting op retires (count/inst/tsc) but not its memory event."""

    def _totals(self, build, translate, *, rsp=None):
        core, exc = _run(build, translate, rsp=rsp)
        assert exc is not None
        return core, exc

    def test_faulting_load_retires_no_load(self, translate):
        core, exc = self._totals(
            lambda a: (a.load("rax", "rbp", 8), a.load("rbx", "rax", 0)), translate
        )
        assert isinstance(exc, HardwareException)
        totals = core.pmu.totals()
        assert totals.instructions == 2  # both loads retired, halt never did
        assert totals.loads == 1         # only the successful one counted
        assert core.tracer.count == 2

    def test_faulting_store_retires_no_store(self, translate):
        core, exc = self._totals(
            lambda a: (a.mov("rax", 0xDEAD0000), a.store("rax", 0, 1)), translate
        )
        assert isinstance(exc, HardwareException)
        assert core.pmu.totals().stores == 0

    def test_faulting_push_is_ss_without_store(self, translate):
        core, exc = self._totals(lambda a: a.push("rax"), translate, rsp=STACK)
        assert isinstance(exc, HardwareException)
        assert exc.vector is Vector.STACK_FAULT
        assert core.pmu.totals().stores == 0
        assert core.pmu.totals().instructions == 1

    def test_faulting_pop_is_ss_without_load(self, translate):
        core, exc = self._totals(
            lambda a: a.pop("rax"), translate, rsp=STACK + PAGE_SIZE
        )
        assert isinstance(exc, HardwareException)
        assert exc.vector is Vector.STACK_FAULT
        assert core.pmu.totals().loads == 0

    def test_faulting_call_counts_branch_not_store(self, translate):
        def build(a):
            a.call("leaf")
            a.label("leaf")
            a.ret()

        core, exc = self._totals(build, translate, rsp=STACK)
        assert isinstance(exc, HardwareException)
        assert exc.vector is Vector.STACK_FAULT
        totals = core.pmu.totals()
        assert totals.branches == 1  # the branch event precedes the access
        assert totals.stores == 0

    def test_faulting_ret_counts_branch_not_load(self, translate):
        core, exc = self._totals(lambda a: a.ret(), translate, rsp=STACK + PAGE_SIZE)
        assert isinstance(exc, HardwareException)
        assert exc.vector is Vector.STACK_FAULT
        totals = core.pmu.totals()
        assert totals.branches == 1
        assert totals.loads == 0

    def test_failing_assert_counts_its_check(self, translate):
        core, exc = self._totals(
            lambda a: (a.mov("rax", 5), a.assert_eq("rax", 6, "pin")), translate
        )
        assert isinstance(exc, AssertionViolation)
        assert core._assert_checks == 1
        assert core.pmu.totals().instructions == 2

    def test_div_by_zero_retires(self, translate):
        core, exc = self._totals(
            lambda a: (a.mov("rbx", 0), a.div("rax", "rbx")), translate
        )
        assert isinstance(exc, HardwareException)
        assert exc.vector is Vector.DIVIDE_ERROR
        assert core.pmu.totals().instructions == 2
        assert core.tracer.count == 2
