"""Differential fuzzing: translated execution must equal the interpreter.

The interpreter in ``CPUCore._dispatch`` is the semantic oracle for the
basic-block translation cache.  These tests generate seeded random short
programs through the assembler — arithmetic, memory traffic, stack ops,
subroutine calls, branches (forward and backward), assertions, divisions,
untranslatable ops (``rep movs``/``rdtsc``/``cpuid``) and deliberate faults —
and execute each one twice on fresh machines, once with ``translate=False``
and once with ``translate=True``.  Every architecturally visible outcome must
be bit-identical: final registers, data/stack memory contents, perf-counter
totals, dynamic instruction count, path hash, TSC, assertion-check tally, and
the terminal event (normal exit, hardware exception vector/rip/detail,
assertion violation, or watchdog exhaustion).
"""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationEvent, SimulationLimitExceeded
from repro.machine import translator
from repro.machine.assembler import Assembler
from repro.machine.cpu import CPUCore
from repro.machine.memory import Memory, PAGE_SIZE, Region
from repro.machine.translator import translation_for


@pytest.fixture(autouse=True)
def _eager_compilation(monkeypatch):
    # Each fuzz program executes exactly once per mode; warmth-gated
    # compilation would make the translated run interpret everything.
    monkeypatch.setattr(translator, "COMPILE_THRESHOLD", 1)

TEXT_BASE = 0x1000
DATA_BASE = 0x10000
DATA_SIZE = 4 * PAGE_SIZE
STACK_BASE = 0x40000
STACK_SIZE = 2 * PAGE_SIZE

N_PROGRAMS = 200
MAX_INSTRUCTIONS = 3_000

#: Registers random instructions may use freely.  rbp (data pointer), rsp
#: (stack pointer) and the rep_movs registers are managed explicitly so the
#: generated traffic stays inside the mapped regions often enough to also
#: exercise long fault-free runs, while still producing plenty of faults.
_SCRATCH = ("rax", "rbx", "rdx", "r8", "r9", "r10", "r11", "r12")
_CONDS = ("e", "ne", "l", "le", "g", "ge", "b", "ae", "be", "a", "s", "ns")


def _random_program(rng: random.Random):
    a = Assembler(base=TEXT_BASE)
    n_labels = rng.randint(1, 4)
    n_instrs = rng.randint(8, 40)
    label_slots = sorted(rng.sample(range(n_instrs), n_labels))
    next_label = 0
    placed: list[str] = []
    has_leaf = rng.random() < 0.5

    def reg() -> str:
        return rng.choice(_SCRATCH)

    def src():
        return reg() if rng.random() < 0.5 else rng.randint(-16, 1 << 20)

    for i in range(n_instrs):
        if next_label < n_labels and i == label_slots[next_label]:
            placed.append(a.label(f"L{next_label}"))
            next_label += 1
        roll = rng.random()
        if roll < 0.30:
            op = rng.choice(("add", "sub", "and_", "or_", "xor", "imul"))
            getattr(a, op)(reg(), src())
        elif roll < 0.40:
            a.mov(reg(), src())
        elif roll < 0.48:
            # Mostly in-bounds data traffic; occasionally a wild pointer so
            # mid-block #PF side exits get fuzzed too.
            disp = rng.randrange(0, DATA_SIZE - 8, 8)
            if rng.random() < 0.06:
                disp = DATA_SIZE + rng.randrange(0, 1 << 20, 8)
            if rng.random() < 0.5:
                a.store("rbp", disp, src())
            else:
                a.load(reg(), "rbp", disp)
        elif roll < 0.54:
            if rng.random() < 0.5:
                a.push(reg())
            else:
                a.pop(reg())
        elif roll < 0.60:
            a.cmp(reg(), src())
        elif roll < 0.68 and placed:
            # Branches to already-placed labels (backward) are loops bounded
            # by the watchdog; both execution modes must time out identically.
            target = rng.choice(placed)
            if rng.random() < 0.85:
                a.jcc(rng.choice(_CONDS), target)
            else:
                a.jmp(target)
        elif roll < 0.73:
            a.shl(reg(), rng.randint(0, 70)) if rng.random() < 0.5 else a.shr(
                reg(), rng.randint(0, 70)
            )
        elif roll < 0.78:
            a.inc(reg()) if rng.random() < 0.5 else a.dec(reg())
        elif roll < 0.83:
            kind = rng.random()
            if kind < 0.4:
                a.assert_range(reg(), 0, 1 << rng.randint(8, 64), f"rng{i}")
            elif kind < 0.7:
                a.assert_eq(reg(), rng.randint(0, 8), f"eq{i}")
            else:
                a.assert_eq_reg(reg(), reg(), f"pair{i}")
        elif roll < 0.86:
            a.div(reg(), reg())  # divisor may be zero -> #DE parity
        elif roll < 0.89 and has_leaf:
            a.call("leaf")
        elif roll < 0.92:
            a.rdtsc() if rng.random() < 0.5 else a.cpuid()
        elif roll < 0.95:
            a.mov("rcx", rng.randint(0, 6))
            a.lea("rsi", "rbp", rng.randrange(0, PAGE_SIZE, 8))
            a.lea("rdi", "rbp", PAGE_SIZE + rng.randrange(0, PAGE_SIZE, 8))
            a.rep_movs()
        elif roll < 0.98:
            a.test(reg(), src())
        else:
            a.nop()
    a.halt()
    if has_leaf:
        a.label("leaf")
        a.add(rng.choice(_SCRATCH), rng.randint(1, 9))
        if rng.random() < 0.3:
            a.assert_range(rng.choice(_SCRATCH), 0, (1 << 63) - 1, "leaf_guard")
        a.ret()
    return a.assemble()


def _machine(translate: bool) -> tuple[CPUCore, Memory]:
    mem = Memory()
    mem.map_region(Region("text", TEXT_BASE, PAGE_SIZE, writable=False, executable=True))
    mem.map_region(Region("data", DATA_BASE, DATA_SIZE))
    mem.map_region(Region("stack", STACK_BASE, STACK_SIZE))
    core = CPUCore(0, mem, translate=translate)
    return core, mem


def _seed_registers(core: CPUCore, rng: random.Random) -> None:
    for name in _SCRATCH:
        core.regs.write(name, rng.getrandbits(64))
    core.regs.write("rbp", DATA_BASE)
    core.regs.write("rcx", rng.randint(0, 8))
    core.regs.write("rsi", DATA_BASE)
    core.regs.write("rdi", DATA_BASE + PAGE_SIZE)
    # Mid-stack, sometimes near the edges so push/call deliver #SS.
    slack = rng.choice((0, 8, 64, STACK_SIZE // 2, STACK_SIZE))
    core.regs.write("rsp", STACK_BASE + slack)


def _observe(program, translate: bool, reg_seed: int):
    """Run ``program`` on a fresh machine; return every visible outcome."""
    core, mem = _machine(translate)
    _seed_registers(core, random.Random(reg_seed))
    event: tuple | None = None
    try:
        result = core.run(program, TEXT_BASE, max_instructions=MAX_INSTRUCTIONS)
        exit_op = result.exit_op.value
    except SimulationLimitExceeded:
        exit_op = "watchdog"
    except SimulationEvent as exc:
        exit_op = "fault"
        event = (
            type(exc).__name__,
            getattr(exc, "vector", None),
            getattr(exc, "rip", None),
            getattr(exc, "detail", None),
            getattr(exc, "assertion_id", None),
            getattr(exc, "observed", None),
            getattr(exc, "address", None),
            getattr(exc, "kind", None),
        )
    return {
        "exit": exit_op,
        "event": event,
        "regs": core.regs.snapshot(),
        "count": core.tracer.count,
        "path_hash": core.tracer.path_hash,
        "tsc": core.tsc,
        "asserts": core._assert_checks,
        "pmu": core.pmu.totals(),
        "data": mem.read_block(DATA_BASE, DATA_SIZE),
        "stack": mem.read_block(STACK_BASE, STACK_SIZE),
    }


class TestDifferentialFuzz:
    def test_translated_equals_interpreted(self):
        """200 seeded random programs: every visible outcome bit-identical."""
        mismatches = []
        outcomes = {"vmentry": 0, "halt": 0, "watchdog": 0, "fault": 0}
        for i in range(N_PROGRAMS):
            rng = random.Random(0xD1FF + i)
            program = _random_program(rng)
            reg_seed = rng.getrandbits(32)
            interp = _observe(program, False, reg_seed)
            trans = _observe(program, True, reg_seed)
            if interp != trans:
                keys = [k for k in interp if interp[k] != trans[k]]
                mismatches.append((i, keys, interp["event"], trans["event"]))
            outcomes[interp["exit"]] += 1
        assert not mismatches, f"diverged on {len(mismatches)} programs: {mismatches[:5]}"
        # The corpus must actually exercise both clean exits and faults, or
        # the equivalence above proves less than it claims.
        assert outcomes["halt"] >= 20, outcomes
        assert outcomes["fault"] >= 20, outcomes

    def test_fuzz_corpus_translates_blocks(self):
        """The generated corpus compiles and reuses translated blocks."""
        rng = random.Random(0xD1FF)
        program = _random_program(rng)
        translation = translation_for(program)
        core, _ = _machine(True)
        _seed_registers(core, random.Random(7))
        try:
            core.run(program, TEXT_BASE, max_instructions=MAX_INSTRUCTIONS)
        except SimulationEvent:
            pass
        assert translation.compiled_blocks > 0
        assert core.translated_instructions > 0
