"""CPU execution semantics, hardware exceptions, and injection hooks."""

import pytest

from repro.errors import MachineConfigError, SimulationLimitExceeded
from repro.machine import (
    AssertionViolation,
    CPUCore,
    HardwareException,
    Op,
    Vector,
    parse_asm,
)
from repro.machine.cpu import instr_register_accesses
from repro.machine.registers import RegisterFile

from tests.conftest import HEAP_BASE, STACK_TOP, TEXT_BASE


def run(cpu, assemble, source, entry="entry", **kw):
    prog = assemble(source)
    return prog, cpu.run(prog, prog.address_of(entry), **kw)


class TestBasicExecution:
    def test_arithmetic_loop(self, cpu, assemble):
        _, res = run(
            cpu,
            assemble,
            """
            entry:
                mov rax, 0
                mov rbx, 0
            loop:
                add rax, rbx
                inc rbx
                cmp rbx, 10
                jl loop
                vmentry
            """,
        )
        assert cpu.regs["rax"] == sum(range(10))
        assert res.exit_op is Op.VMENTRY

    def test_memory_roundtrip_through_heap(self, cpu, assemble):
        run(
            cpu,
            assemble,
            f"""
            entry:
                mov rbp, {HEAP_BASE}
                mov rax, 1234
                store [rbp+16], rax
                load rbx, [rbp+16]
                vmentry
            """,
        )
        assert cpu.regs["rbx"] == 1234

    def test_call_ret_stack_discipline(self, cpu, assemble):
        _, res = run(
            cpu,
            assemble,
            """
            entry:
                mov rax, 1
                call double
                call double
                vmentry
            double:
                add rax, rax
                ret
            """,
        )
        assert cpu.regs["rax"] == 4
        assert cpu.regs["rsp"] == STACK_TOP  # balanced

    def test_push_pop(self, cpu, assemble):
        run(
            cpu,
            assemble,
            """
            entry:
                mov rax, 7
                mov rbx, 9
                push rax
                push rbx
                pop rcx
                pop rdx
                vmentry
            """,
        )
        assert cpu.regs["rcx"] == 9 and cpu.regs["rdx"] == 7

    def test_lea_computes_address_without_access(self, cpu, assemble):
        run(
            cpu,
            assemble,
            """
            entry:
                mov rbp, 0x123400
                lea rax, [rbp+0x38]
                vmentry
            """,
        )
        assert cpu.regs["rax"] == 0x123438

    def test_shifts_and_logic(self, cpu, assemble):
        run(
            cpu,
            assemble,
            """
            entry:
                mov rax, 0b1100
                shl rax, 2
                mov rbx, rax
                shr rbx, 4
                xor rax, rbx
                vmentry
            """,
        )
        assert cpu.regs["rax"] == 0b110000 ^ 0b11

    def test_div_quotient(self, cpu, assemble):
        run(
            cpu,
            assemble,
            """
            entry:
                mov rax, 100
                mov rbx, 7
                div rax, rbx
                vmentry
            """,
        )
        assert cpu.regs["rax"] == 14

    def test_imul(self, cpu, assemble):
        run(cpu, assemble, "entry:\n mov rax, 6\n imul rax, 7\n vmentry")
        assert cpu.regs["rax"] == 42

    def test_rdtsc_advances_with_instructions(self, cpu, assemble):
        run(
            cpu,
            assemble,
            """
            entry:
                rdtsc
                mov rbx, rax
                nop
                nop
                rdtsc
                sub rax, rbx
                vmentry
            """,
        )
        assert cpu.regs["rax"] == 4  # four instructions between the two reads

    def test_cpuid_returns_vendor_leaf(self, cpu, assemble):
        run(cpu, assemble, "entry:\n mov rax, 0\n cpuid\n vmentry")
        assert cpu.regs["rbx"] == 0x756E6547  # "Genu"

    def test_halt_terminator(self, cpu, assemble):
        _, res = run(cpu, assemble, "entry:\n halt")
        assert res.exit_op is Op.HALT


class TestHardwareExceptions:
    def test_unmapped_load_is_page_fault(self, cpu, assemble):
        with pytest.raises(HardwareException) as info:
            run(cpu, assemble, "entry:\n mov rbp, 0x900000\n load rax, [rbp]\n vmentry")
        assert info.value.vector is Vector.PAGE_FAULT

    def test_store_to_text_is_protection_fault(self, cpu, assemble):
        with pytest.raises(HardwareException) as info:
            run(cpu, assemble, f"entry:\n mov rbp, {TEXT_BASE}\n store [rbp], rbp\n vmentry")
        assert info.value.vector is Vector.PAGE_FAULT

    def test_divide_by_zero(self, cpu, assemble):
        with pytest.raises(HardwareException) as info:
            run(cpu, assemble, "entry:\n mov rax, 5\n mov rbx, 0\n div rax, rbx\n vmentry")
        assert info.value.vector is Vector.DIVIDE_ERROR

    def test_stack_fault_on_corrupted_rsp(self, cpu, assemble):
        cpu.regs["rsp"] = 0x40  # unmapped
        with pytest.raises(HardwareException) as info:
            run(cpu, assemble, "entry:\n push rax\n vmentry")
        assert info.value.vector is Vector.STACK_FAULT

    def test_jump_outside_text_is_fetch_fault(self, cpu, assemble):
        cpu.regs["rip"] = 0x900000
        prog = assemble("entry:\n vmentry")
        with pytest.raises(HardwareException) as info:
            cpu.run(prog, 0x900000)
        assert info.value.vector is Vector.PAGE_FAULT
        assert "fetch" in info.value.detail

    def test_misaligned_rip_is_invalid_opcode(self, cpu, assemble):
        prog = assemble("entry:\n nop\n nop\n vmentry")
        with pytest.raises(HardwareException) as info:
            cpu.run(prog, prog.base + 2)
        assert info.value.vector is Vector.INVALID_OPCODE

    def test_non_canonical_rip_is_gp(self, cpu, assemble):
        prog = assemble("entry:\n vmentry")
        with pytest.raises(HardwareException) as info:
            cpu.run(prog, 0x0000_9000_0000_0000)
        assert info.value.vector is Vector.GENERAL_PROTECTION

    def test_budget_exhaustion_models_hang(self, cpu, assemble):
        with pytest.raises(SimulationLimitExceeded):
            run(cpu, assemble, "entry:\n jmp entry", max_instructions=100)


class TestAssertions:
    def test_passing_assertion_is_transparent(self, cpu, assemble):
        _, res = run(
            cpu, assemble, "entry:\n mov rax, 5\n assert_range rax, 0, 31, trap\n vmentry"
        )
        assert res.assertion_checks == 1

    def test_failing_range_assertion_raises(self, cpu, assemble):
        with pytest.raises(AssertionViolation) as info:
            run(cpu, assemble, "entry:\n mov rax, 99\n assert_range rax, 0, 31, trapno\n vmentry")
        assert info.value.assertion_id == "trapno"
        assert info.value.observed == 99

    def test_failing_eq_assertion_raises(self, cpu, assemble):
        with pytest.raises(AssertionViolation):
            run(cpu, assemble, "entry:\n mov rbx, 2\n assert_eq rbx, 1, vcpu_idle\n vmentry")


class TestRepMovs:
    def make_copy_source(self, words):
        return f"""
        entry:
            mov rcx, {words}
            mov rsi, {HEAP_BASE}
            mov rdi, {HEAP_BASE + 0x8000}
            rep_movs
            vmentry
        """

    def test_copies_data(self, cpu, assemble, memory):
        for i in range(8):
            memory.write_u64(HEAP_BASE + 8 * i, i + 100)
        run(cpu, assemble, self.make_copy_source(8))
        assert [memory.read_u64(HEAP_BASE + 0x8000 + 8 * i) for i in range(8)] == [
            i + 100 for i in range(8)
        ]
        assert cpu.regs["rcx"] == 0

    def test_counts_per_word_events(self, cpu, assemble):
        cpu.pmu.arm()
        _, res = run(cpu, assemble, self.make_copy_source(16))
        sample = cpu.pmu.collect()
        assert sample.loads >= 16 and sample.stores >= 16
        # 5 visible instructions + 16 iteration retirements
        assert sample.instructions == 5 + 16

    def test_flipped_count_changes_footprint(self, cpu, assemble, memory):
        prog = assemble(self.make_copy_source(8))
        baseline = cpu.run(prog, prog.address_of("entry"))
        cpu2 = CPUCore(0, memory)
        cpu2.regs["rsp"] = STACK_TOP
        cpu2.schedule_register_flip(3, "rcx", 4)  # 8 -> 24 words
        res = cpu2.run(prog, prog.address_of("entry"))
        assert res.instructions > baseline.instructions
        assert res.path_hash != baseline.path_hash

    def test_huge_count_faults_at_region_end(self, cpu, assemble):
        with pytest.raises(HardwareException) as info:
            run(cpu, assemble, self.make_copy_source(1 << 20))
        assert info.value.vector is Vector.PAGE_FAULT


class TestInjection:
    def test_flip_applied_at_dynamic_index(self, cpu, assemble):
        cpu.schedule_register_flip(1, "rax", 3)
        run(cpu, assemble, "entry:\n mov rax, 0\n mov rbx, rax\n vmentry")
        assert cpu.regs["rbx"] == 8  # flip landed before the copy
        report = cpu.injection_report
        assert report.applied and report.activated

    def test_overwrite_before_read_is_not_activated(self, cpu, assemble):
        cpu.schedule_register_flip(1, "rbx", 5)
        run(cpu, assemble, "entry:\n mov rax, 1\n mov rbx, 7\n mov rcx, rbx\n vmentry")
        assert cpu.injection_report.activated is False
        assert cpu.regs["rcx"] == 7  # value fully masked

    def test_never_touched_register_is_not_activated(self, cpu, assemble):
        cpu.schedule_register_flip(0, "r15", 1)
        run(cpu, assemble, "entry:\n mov rax, 1\n vmentry")
        assert cpu.injection_report.activated is None

    def test_rip_flip_always_activated(self, cpu, assemble):
        cpu.schedule_register_flip(1, "rip", 60)  # lands non-canonical
        with pytest.raises(HardwareException):
            run(cpu, assemble, "entry:\n nop\n nop\n nop\n vmentry")
        assert cpu.injection_report.activated is True

    def test_rip_low_bit_flip_can_reach_other_valid_instruction(self, cpu, assemble):
        # Flipping bit 3 of rip jumps 8 bytes: from instruction i to i+2,
        # a *valid but incorrect* control flow (Fig. 5b).
        source = """
        entry:
            mov rax, 1
            mov rbx, 2
            mov rcx, 3
            mov rdx, 4
            vmentry
        """
        prog = assemble(source)
        golden = cpu.run(prog, prog.address_of("entry"))
        cpu2 = CPUCore(0, cpu.memory)
        cpu2.regs["rsp"] = STACK_TOP
        cpu2.schedule_register_flip(1, "rip", 3)
        res = cpu2.run(prog, prog.address_of("entry"))
        assert res.exit_op is Op.VMENTRY           # still terminates legally
        assert res.instructions < golden.instructions  # skipped instructions
        assert cpu2.regs["rbx"] != 2 or cpu2.regs["rcx"] != 3

    def test_flags_flip_changes_branch_outcome(self, cpu, assemble):
        source = """
        entry:
            mov rax, 5
            cmp rax, 5
            je equal
            mov rbx, 111
            vmentry
        equal:
            mov rbx, 222
            vmentry
        """
        prog = assemble(source)
        cpu.run(prog, prog.address_of("entry"))
        assert cpu.regs["rbx"] == 222
        cpu2 = CPUCore(0, cpu.memory)
        cpu2.regs["rsp"] = STACK_TOP
        cpu2.schedule_register_flip(2, "rflags", 6)  # clear ZF before je
        cpu2.run(prog, prog.address_of("entry"))
        assert cpu2.regs["rbx"] == 111
        assert cpu2.injection_report.activated is True

    def test_injection_validation(self, cpu):
        with pytest.raises(MachineConfigError):
            cpu.schedule_register_flip(0, "bogus", 1)
        with pytest.raises(MachineConfigError):
            cpu.schedule_register_flip(0, "rax", 64)
        with pytest.raises(MachineConfigError):
            cpu.schedule_register_flip(-1, "rax", 0)

    def test_clear_injection_disarms(self, cpu, assemble):
        cpu.schedule_register_flip(0, "rax", 0)
        cpu.clear_injection()
        run(cpu, assemble, "entry:\n mov rbx, rax\n vmentry")
        assert cpu.regs["rbx"] == 0
        assert cpu.injection_report is None

    def test_injection_beyond_run_never_applies(self, cpu, assemble):
        cpu.schedule_register_flip(10_000, "rax", 0)
        run(cpu, assemble, "entry:\n nop\n vmentry")
        assert cpu.injection_report.applied is False


class TestRegisterAccessMetadata:
    def test_mov_reads_src_writes_dst(self, assemble):
        prog = assemble("mov rax, rbx")
        reads, writes = instr_register_accesses(prog.instructions[0])
        assert RegisterFile.index_of("rbx") in reads
        assert RegisterFile.index_of("rax") in writes

    def test_store_reads_base_and_src(self, assemble):
        prog = assemble("store [rbp+8], rcx")
        reads, writes = instr_register_accesses(prog.instructions[0])
        assert RegisterFile.index_of("rbp") in reads
        assert RegisterFile.index_of("rcx") in reads
        assert not writes

    def test_alu_reads_and_writes_dst_plus_flags(self, assemble):
        prog = assemble("add rax, rbx")
        reads, writes = instr_register_accesses(prog.instructions[0])
        assert RegisterFile.index_of("rax") in reads
        assert RegisterFile.index_of("rflags") in writes

    def test_jcc_reads_flags(self, assemble):
        prog = assemble("x:\n je x")
        reads, _ = instr_register_accesses(prog.instructions[0])
        assert reads == frozenset({RegisterFile.index_of("rflags")})

    def test_push_reads_rsp_and_source(self, assemble):
        prog = assemble("push rdi")
        reads, writes = instr_register_accesses(prog.instructions[0])
        rsp = RegisterFile.index_of("rsp")
        assert rsp in reads and rsp in writes
        assert RegisterFile.index_of("rdi") in reads

    def test_rep_movs_touches_string_registers(self, assemble):
        prog = assemble("rep_movs")
        reads, writes = instr_register_accesses(prog.instructions[0])
        for name in ("rcx", "rsi", "rdi"):
            idx = RegisterFile.index_of(name)
            assert idx in reads and idx in writes

    def test_cpuid_reads_rax_writes_output_regs(self, assemble):
        prog = assemble("cpuid")
        reads, writes = instr_register_accesses(prog.instructions[0])
        assert reads == frozenset({RegisterFile.index_of("rax")})
        assert RegisterFile.index_of("rdx") in writes


class TestCounters:
    def test_branch_counter_counts_all_transfers(self, cpu, assemble):
        cpu.pmu.arm()
        run(
            cpu,
            assemble,
            """
            entry:
                call sub
                jmp out
            sub:
                ret
            out:
                vmentry
            """,
        )
        assert cpu.pmu.collect().branches == 3  # call, ret, jmp

    def test_load_store_counters(self, cpu, assemble):
        cpu.pmu.arm()
        run(
            cpu,
            assemble,
            f"""
            entry:
                mov rbp, {HEAP_BASE}
                store [rbp], rbp
                load rax, [rbp]
                push rax
                pop rbx
                vmentry
            """,
        )
        sample = cpu.pmu.collect()
        assert sample.loads == 2 and sample.stores == 2  # pop/push count too

    def test_unarmed_window_still_counts_totals(self, cpu, assemble):
        run(cpu, assemble, "entry:\n nop\n vmentry")
        assert cpu.pmu.totals().instructions == 2
