"""Memory model: mapping, protection, faults, diffing."""

import pytest

from repro.errors import MemoryConfigError
from repro.machine import (
    HardwareException,
    Memory,
    PAGE_SIZE,
    PageFaultKind,
    Region,
    Vector,
    is_canonical,
)


def make_memory() -> Memory:
    mem = Memory()
    mem.map_region(Region("heap", 0x10000, 2 * PAGE_SIZE))
    mem.map_region(Region("rodata", 0x20000, PAGE_SIZE, writable=False))
    mem.map_region(Region("text", 0x30000, PAGE_SIZE, writable=False, executable=True))
    return mem


class TestMapping:
    def test_overlapping_regions_rejected(self):
        mem = Memory()
        mem.map_region(Region("a", 0x1000, PAGE_SIZE))
        with pytest.raises(MemoryConfigError):
            mem.map_region(Region("b", 0x1000, PAGE_SIZE))

    def test_adjacent_regions_allowed(self):
        mem = Memory()
        mem.map_region(Region("a", 0x1000, PAGE_SIZE))
        mem.map_region(Region("b", 0x1000 + PAGE_SIZE, PAGE_SIZE))
        assert len(mem.regions) == 2

    def test_unaligned_region_rejected(self):
        with pytest.raises(MemoryConfigError):
            Region("bad", 0x1004, PAGE_SIZE)
        with pytest.raises(MemoryConfigError):
            Region("bad", 0x1000, 100)

    def test_non_canonical_region_rejected(self):
        with pytest.raises(MemoryConfigError):
            Region("bad", 0x0000_9000_0000_0000, PAGE_SIZE)

    def test_region_at_lookup(self):
        mem = make_memory()
        assert mem.region_at(0x10008).name == "heap"
        assert mem.region_at(0x10000 + 2 * PAGE_SIZE) is None


class TestAccess:
    def test_write_read_roundtrip(self):
        mem = make_memory()
        mem.write_u64(0x10010, 0x1122334455667788)
        assert mem.read_u64(0x10010) == 0x1122334455667788

    def test_unwritten_memory_reads_zero(self):
        assert make_memory().read_u64(0x10FF0) == 0

    def test_value_truncated_to_64_bits(self):
        mem = make_memory()
        mem.write_u64(0x10000, (1 << 64) | 9)
        assert mem.read_u64(0x10000) == 9

    def test_unaligned_word_within_page(self):
        mem = make_memory()
        mem.write_u64(0x10003, 0xAABB)
        assert mem.read_u64(0x10003) == 0xAABB

    def test_word_crossing_page_boundary(self):
        mem = make_memory()
        addr = 0x10000 + PAGE_SIZE - 4  # straddles the two heap pages
        mem.write_u64(addr, 0xCAFEBABE12345678)
        assert mem.read_u64(addr) == 0xCAFEBABE12345678

    def test_store_count_increments(self):
        mem = make_memory()
        before = mem.store_count
        mem.write_u64(0x10000, 1)
        assert mem.store_count == before + 1


class TestFaults:
    def test_unmapped_read_raises_fatal_page_fault(self):
        with pytest.raises(HardwareException) as info:
            make_memory().read_u64(0x50000, rip=0x1234)
        exc = info.value
        assert exc.vector is Vector.PAGE_FAULT
        assert exc.kind is PageFaultKind.FATAL_UNMAPPED
        assert exc.address == 0x50000 and exc.rip == 0x1234

    def test_write_to_readonly_raises_protection_fault(self):
        with pytest.raises(HardwareException) as info:
            make_memory().write_u64(0x20000, 1)
        assert info.value.kind is PageFaultKind.FATAL_PROTECTION

    def test_read_of_readonly_is_fine(self):
        assert make_memory().read_u64(0x20000) == 0

    def test_non_canonical_raises_gp(self):
        with pytest.raises(HardwareException) as info:
            make_memory().read_u64(0x0000_9000_0000_0000)
        assert info.value.vector is Vector.GENERAL_PROTECTION

    def test_execute_check_requires_x(self):
        mem = make_memory()
        mem.check_execute(0x30000, rip=0x30000)  # text is executable
        with pytest.raises(HardwareException) as info:
            mem.check_execute(0x10000, rip=0x10000)
        assert info.value.kind is PageFaultKind.FATAL_PROTECTION

    def test_word_crossing_into_unmapped_faults(self):
        mem = make_memory()
        addr = 0x20000 + PAGE_SIZE - 4  # rodata's last word straddles out
        with pytest.raises(HardwareException):
            mem.read_u64(addr)


class TestCanonical:
    @pytest.mark.parametrize(
        "address,expected",
        [
            (0, True),
            (0x0000_7FFF_FFFF_FFFF, True),
            (0x0000_8000_0000_0000, False),
            (0xFFFF_8000_0000_0000, True),
            (0xFFFF_FFFF_FFFF_FFFF, True),
            (0x8000_0000_0000_0000, False),
            (0x0001_0000_0000_0000, False),
        ],
    )
    def test_canonicality(self, address, expected):
        assert is_canonical(address) is expected


class TestDiffing:
    def test_snapshot_and_diff_region(self):
        mem = make_memory()
        heap = mem.regions[0]
        mem.write_u64(0x10000, 1)
        baseline = mem.snapshot_region(heap)
        mem.write_u64(0x10008, 42)
        mem.write_u64(0x10000, 1)  # unchanged value -> not a diff
        assert mem.diff_region(heap, baseline) == [0x10008]

    def test_diff_requires_matching_baseline(self):
        mem = make_memory()
        with pytest.raises(MemoryConfigError):
            mem.diff_region(mem.regions[0], b"short")

    def test_touched_pages_tracks_materialization(self):
        mem = make_memory()
        assert mem.touched_pages() == ()
        mem.write_u64(0x10000, 1)
        assert 0x10000 in mem.touched_pages()
