"""Fleet simulator determinism and emission properties."""

import numpy as np
import pytest

from repro.errors import CampaignConfigError
from repro.hypervisor import REGISTRY
from repro.service.fleet import FleetConfig, FleetSimulator, HostStream


def emit_all(config: FleetConfig, max_rows: int):
    sim = FleetSimulator(config)
    rows = [row for tick in sim.stream(max_rows) for row in tick]
    return sim, rows


class TestHostStream:
    def test_host_stream_is_a_pure_function_of_seed_and_host(self):
        a = HostStream(FleetConfig(hosts=4, seed=11), host=2)
        b = HostStream(FleetConfig(hosts=4, seed=11), host=2)
        rows_a = [r for t in range(20) for r in a.rows_for_tick(t)]
        rows_b = [r for t in range(20) for r in b.rows_for_tick(t)]
        assert [r.features for r in rows_a] == [r.features for r in rows_b]
        assert [r.injected for r in rows_a] == [r.injected for r in rows_b]

    def test_host_stream_independent_of_fleet_size(self):
        small = HostStream(FleetConfig(hosts=3, seed=9), host=1)
        large = HostStream(FleetConfig(hosts=300, seed=9), host=1)
        rows_s = [r for t in range(10) for r in small.rows_for_tick(t)]
        rows_l = [r for t in range(10) for r in large.rows_for_tick(t)]
        assert [r.features for r in rows_s] == [r.features for r in rows_l]

    def test_different_hosts_differ(self):
        config = FleetConfig(hosts=4, seed=11)
        rows0 = HostStream(config, 0).rows_for_tick(0)
        rows1 = HostStream(config, 1).rows_for_tick(0)
        assert [r.features for r in rows0] != [r.features for r in rows1]

    def test_features_within_envelopes(self):
        stream = HostStream(FleetConfig(hosts=1, seed=5, inject_fraction=0.0), 0)
        for tick in range(50):
            for row in stream.rows_for_tick(tick):
                vmer, rt, br, rm, wm = row.features
                assert 0 <= vmer < len(REGISTRY)
                assert all(v >= 0 for v in (rt, br, rm, wm))
                assert 0 <= row.vm < stream.config.vms_per_host


class TestFleetSimulator:
    def test_fixed_seed_stream_is_bit_identical(self):
        config = FleetConfig(hosts=6, seed=3, inject_fraction=0.1)
        _, rows_a = emit_all(config, 2000)
        _, rows_b = emit_all(config, 2000)
        assert [(r.host, r.vm, r.tick, r.features, r.injected) for r in rows_a] \
            == [(r.host, r.vm, r.tick, r.features, r.injected) for r in rows_b]

    def test_max_rows_cap_is_exact(self):
        sim, rows = emit_all(FleetConfig(hosts=7, seed=1), 1234)
        assert len(rows) == 1234
        assert sim.emitted == 1234

    def test_injected_fraction_tracks_config(self):
        sim, rows = emit_all(FleetConfig(hosts=8, seed=2, inject_fraction=0.2), 10000)
        fraction = sum(r.injected for r in rows) / len(rows)
        assert fraction == pytest.approx(0.2, abs=0.02)
        assert sim.injected == sum(r.injected for r in rows)

    def test_zero_injection_fleet(self):
        _, rows = emit_all(FleetConfig(hosts=2, seed=4, inject_fraction=0.0), 500)
        assert not any(r.injected for r in rows)

    def test_injected_rows_perturb_counters(self):
        config = FleetConfig(hosts=4, seed=6, inject_fraction=0.5)
        _, rows = emit_all(config, 4000)
        clean = np.array([r.features[1] for r in rows if not r.injected])
        faulty = np.array([r.features[1] for r in rows if r.injected])
        # Injected rows are scaled out of the nominal envelope on average.
        assert faulty.std() > clean.std()

    def test_bursts_fire_on_schedule(self):
        config = FleetConfig(
            hosts=1, seed=8, rows_per_tick=2, burst_every=4, burst_rows=50
        )
        sim = FleetSimulator(config)
        sizes = [len(sim.next_tick()) for _ in range(8)]
        assert sizes[3] > 50 and sizes[7] > 50
        assert all(size < 10 for i, size in enumerate(sizes) if i not in (3, 7))

    def test_feature_matrix_shape_and_dtype(self):
        sim, rows = emit_all(FleetConfig(hosts=2, seed=1), 64)
        X = sim.feature_matrix(rows)
        assert X.shape == (64, 5) and X.dtype == np.int64

    def test_config_validation(self):
        with pytest.raises(CampaignConfigError):
            FleetConfig(hosts=0)
        with pytest.raises(CampaignConfigError):
            FleetConfig(inject_fraction=1.5)
        with pytest.raises(CampaignConfigError):
            FleetConfig(rows_per_tick=0)
