"""Micro-batch scorer: exact counts, backpressure policies, metric parity.

Streams are handcrafted (``make_row``) against a one-split threshold rule
table, so every expected count is exact — the py-chaos-agent idiom of
asserting labeled metric children directly after driving the system.
"""

import pytest

from repro.errors import CampaignConfigError
from repro.service.metrics import ServiceMetrics
from repro.service.scorer import HostQueue, MicroBatchScorer, OverflowPolicy

from tests.service.conftest import make_row, make_threshold_rules


def make_scorer(**kwargs) -> MicroBatchScorer:
    return MicroBatchScorer(make_threshold_rules(), ServiceMetrics(), **kwargs)


class TestHostQueue:
    def test_fifo_order(self):
        queue = HostQueue(0, depth=4)
        for rt in (1, 2, 3):
            queue.push(make_row(rt=rt))
        assert [r.features[1] for r in queue.take_all()] == [1, 2, 3]
        assert len(queue) == 0

    def test_overflow_evicts_oldest(self):
        queue = HostQueue(0, depth=2)
        assert queue.push(make_row(rt=1)) is None
        assert queue.push(make_row(rt=2)) is None
        evicted = queue.push(make_row(rt=3))
        assert evicted is not None and evicted.features[1] == 1
        assert [r.features[1] for r in queue.take_all()] == [2, 3]

    def test_zero_depth_rejected(self):
        with pytest.raises(CampaignConfigError):
            HostQueue(0, depth=0)


class TestExactCounts:
    def test_n_injected_rows_give_exact_outcome_counters(self):
        """10 hot injected + 3 hot clean + 2 cool injected + 85 cool clean."""
        scorer = make_scorer(batch_rows=16)
        rows = (
            [make_row(rt=5000, injected=True) for _ in range(10)]
            + [make_row(rt=5000, injected=False) for _ in range(3)]
            + [make_row(rt=50, injected=True) for _ in range(2)]
            + [make_row(rt=50, injected=False) for _ in range(85)]
        )
        for row in rows:
            scorer.submit(row)
        scorer.drain()
        detections = scorer.metrics.detections
        assert detections.labels(outcome="true_positive").value == 10
        assert detections.labels(outcome="false_positive").value == 3
        assert detections.labels(outcome="false_negative").value == 2
        assert detections.labels(outcome="true_negative").value == 85
        assert scorer.totals.rows_scored == 100
        assert scorer.totals.detections == 13

    def test_totals_mirror_metrics(self):
        scorer = make_scorer(batch_rows=8)
        for i in range(40):
            scorer.submit(make_row(host=i % 3, rt=5000 if i % 4 == 0 else 10,
                                   injected=i % 4 == 0))
        scorer.drain()
        t = scorer.totals
        assert t.outcome_counts() == {
            "true_positive": 10, "false_positive": 0,
            "true_negative": 30, "false_negative": 0,
        }
        for host in range(3):
            scored = scorer.metrics.rows_scored.labels(host=host).value
            emitted = scorer.metrics.rows_emitted.labels(host=host).value
            assert scored == emitted

    def test_gauges_return_to_zero_after_drain(self):
        scorer = make_scorer(batch_rows=64, queue_depth=16)
        for i in range(30):
            scorer.submit(make_row(host=i % 2))
        assert scorer.metrics.queue_depth.labels(host=0).value > 0
        scorer.drain()
        assert scorer.metrics.queue_depth.labels(host=0).value == 0
        assert scorer.metrics.queue_depth.labels(host=1).value == 0
        assert scorer.metrics.pending_rows.value == 0
        assert scorer.pending == 0


class TestBackpressure:
    def test_drop_oldest_counts_every_drop(self):
        scorer = make_scorer(batch_rows=256, queue_depth=5)
        for i in range(12):  # one burst, no pump in between
            scorer.submit(make_row(host=0, rt=100 + i))
        assert scorer.totals.rows_dropped == 7
        assert scorer.metrics.rows_dropped.labels(host=0).value == 7
        scorer.drain()
        # The 5 newest rows survive drop-oldest.
        assert scorer.totals.rows_scored == 5
        assert scorer.totals.dropped_by_host == {0: 7}

    def test_block_policy_never_drops(self):
        scorer = make_scorer(
            batch_rows=256, queue_depth=5, policy=OverflowPolicy.BLOCK
        )
        for i in range(12):
            scorer.submit(make_row(host=0, rt=100 + i))
        scorer.drain()
        assert scorer.totals.rows_dropped == 0
        assert scorer.totals.rows_scored == 12

    def test_drops_are_per_host(self):
        scorer = make_scorer(batch_rows=256, queue_depth=3)
        for _ in range(10):
            scorer.submit(make_row(host=1))
        for _ in range(2):
            scorer.submit(make_row(host=2))
        scorer.drain()
        assert scorer.totals.dropped_by_host == {1: 7}
        assert scorer.metrics.rows_dropped.labels(host=1).value == 7
        assert scorer.metrics.rows_dropped.labels(host=2).value == 0


class TestBatching:
    def test_pump_scores_only_full_batches(self):
        scorer = make_scorer(batch_rows=32)
        for _ in range(40):
            scorer.submit(make_row())
        scorer.pump()
        assert scorer.totals.rows_scored == 32
        assert scorer.pending == 8
        scorer.drain()
        assert scorer.totals.rows_scored == 40

    def test_batch_count_reflects_chunking(self):
        scorer = make_scorer(batch_rows=10)
        for _ in range(25):
            scorer.submit(make_row())
        scorer.drain()
        assert scorer.totals.batches == 3  # 10 + 10 + 5
        assert scorer.metrics.batches.value == 3

    def test_invalid_batch_rows_rejected(self):
        with pytest.raises(CampaignConfigError):
            make_scorer(batch_rows=0)

    def test_latencies_recorded_for_stamped_rows(self):
        scorer = make_scorer(batch_rows=4)
        for i in range(8):
            row = make_row()
            row.emitted_at = 1e-9  # any truthy stamp
            scorer.submit(row)
        scorer.drain()
        assert len(scorer.latencies) == 8
        assert all(lat >= 0 for lat in scorer.latencies)
