"""Shared helpers for the streaming-service tests.

``threshold_rules`` is a hand-built one-split rule table — RT above a known
threshold classifies INCORRECT — so tests can construct streams with *exact*,
predictable detection counts instead of depending on what a trained tree
happens to learn.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.export import CompiledRules
from repro.service.fleet import FleetRow


def make_threshold_rules(threshold: int = 1000) -> CompiledRules:
    """``RT <= threshold -> CORRECT, RT > threshold -> INCORRECT``."""
    return CompiledRules(
        feature=np.array([1, -1, -1], dtype=np.int16),
        threshold=np.array([threshold, 0, 0], dtype=np.int64),
        left=np.array([1, 0, 0], dtype=np.int32),
        right=np.array([2, 0, 0], dtype=np.int32),
        prediction=np.array([0, 0, 1], dtype=np.int8),
        feature_names=("VMER", "RT", "BR", "RM", "WM"),
    )


def make_row(
    host: int = 0,
    vm: int = 0,
    tick: int = 0,
    rt: int = 100,
    injected: bool = False,
) -> FleetRow:
    """A feature row whose verdict under ``threshold_rules`` is rt > 1000."""
    return FleetRow(
        host=host, vm=vm, tick=tick, features=(3, rt, 10, 5, 2), injected=injected
    )


@pytest.fixture
def threshold_rules() -> CompiledRules:
    return make_threshold_rules()
