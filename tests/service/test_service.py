"""The daemon end to end: determinism contract, drains, health, endpoint."""

import urllib.request

import pytest

from repro.errors import CampaignConfigError
from repro.service import (
    DetectionService,
    FleetConfig,
    OverflowPolicy,
    ServiceConfig,
)

from tests.service.conftest import make_threshold_rules


def run_service(
    batch_rows: int = 128,
    *,
    seed: int = 7,
    hosts: int = 12,
    max_rows: int = 6000,
    queue_depth: int = 128,
    policy: OverflowPolicy = OverflowPolicy.DROP_OLDEST,
    burst_every: int = 0,
    burst_rows: int = 0,
    inject_fraction: float = 0.05,
):
    config = ServiceConfig(
        fleet=FleetConfig(
            hosts=hosts, vms_per_host=3, seed=seed,
            inject_fraction=inject_fraction,
            burst_every=burst_every, burst_rows=burst_rows,
        ),
        batch_rows=batch_rows,
        queue_depth=queue_depth,
        policy=policy,
        max_rows=max_rows,
    )
    service = DetectionService(config, make_threshold_rules())
    report = service.run()
    return service, report


class TestDeterminismContract:
    def test_fixed_seed_runs_are_bit_identical(self):
        _, a = run_service()
        _, b = run_service()
        assert a.deterministic_dict() == b.deterministic_dict()

    @pytest.mark.parametrize("batch_rows", [1, 17, 256, 4096])
    def test_totals_independent_of_batch_size(self, batch_rows):
        _, baseline = run_service(128)
        _, other = run_service(batch_rows)
        assert other.deterministic_dict() == baseline.deterministic_dict()

    @pytest.mark.parametrize("batch_rows", [32, 512])
    def test_totals_independent_of_batch_size_under_bursts(self, batch_rows):
        _, baseline = run_service(
            128, burst_every=3, burst_rows=200, queue_depth=64
        )
        _, other = run_service(
            batch_rows, burst_every=3, burst_rows=200, queue_depth=64
        )
        assert baseline.totals.rows_dropped > 0  # backpressure exercised
        assert other.deterministic_dict() == baseline.deterministic_dict()

    def test_different_seeds_differ(self):
        _, a = run_service(seed=7)
        _, b = run_service(seed=8)
        assert a.deterministic_dict() != b.deterministic_dict()

    def test_every_emitted_row_is_scored_or_dropped(self):
        _, report = run_service(burst_every=2, burst_rows=150, queue_depth=32)
        t = report.totals
        assert t.rows_scored + t.rows_dropped == report.rows_emitted

    def test_block_policy_scores_everything(self):
        _, report = run_service(
            burst_every=2, burst_rows=150, queue_depth=32,
            policy=OverflowPolicy.BLOCK,
        )
        assert report.totals.rows_dropped == 0
        assert report.totals.rows_scored == report.rows_emitted


class TestReport:
    def test_detections_fire_on_injected_rows(self):
        service, report = run_service(inject_fraction=0.1)
        assert report.totals.detections > 0
        # The threshold oracle only fires on perturbed rows.
        detections = service.metrics.detections
        assert detections.labels(outcome="true_positive").value \
            == report.totals.true_positive

    def test_latency_percentiles_use_cdf(self):
        _, report = run_service()
        pct = report.latency_percentiles
        assert set(pct) == {"p50", "p95", "p99"}
        assert 0 <= pct["p50"] <= pct["p95"] <= pct["p99"]

    def test_summary_mentions_key_figures(self):
        _, report = run_service()
        text = report.summary()
        assert "scored" in text and "detections:" in text
        assert "backpressure:" in text and "p99" in text

    def test_rows_per_sec_positive(self):
        _, report = run_service()
        assert report.rows_per_sec > 0

    def test_write_summary_roundtrip(self, tmp_path):
        import json

        service, report = run_service()
        path = tmp_path / "summary.json"
        service.write_summary(path)
        assert json.loads(path.read_text()) == report.deterministic_dict()

    def test_write_summary_before_run_rejected(self):
        service = DetectionService(
            ServiceConfig(fleet=FleetConfig(hosts=1), max_rows=10),
            make_threshold_rules(),
        )
        with pytest.raises(CampaignConfigError):
            service.write_summary("nope.json")


class TestLifecycle:
    def test_health_document_tracks_progress(self):
        service, report = run_service()
        health = service.health()
        assert health["done"] is True
        assert health["rows_scored"] == report.totals.rows_scored
        assert health["hosts"] == 12

    def test_request_stop_drains_gracefully(self):
        config = ServiceConfig(
            fleet=FleetConfig(hosts=4, seed=1), max_rows=10_000_000,
            duration=30.0,
        )
        service = DetectionService(config, make_threshold_rules())
        service.request_stop()
        report = service.run()
        # Stopped before the first tick: nothing emitted, nothing lost.
        assert report.rows_emitted == 0
        assert report.totals.rows_scored == 0

    def test_endpoint_serves_final_totals(self):
        service, report = run_service()
        server = service.endpoint().start()
        try:
            with urllib.request.urlopen(
                f"{server.url}/metrics", timeout=5
            ) as response:
                body = response.read().decode()
        finally:
            server.stop()
        assert (
            f'repro_detections_total{{outcome="true_positive"}} '
            f"{report.totals.true_positive}" in body
        )
        assert "repro_decision_latency_seconds_bucket" in body

    def test_config_needs_stop_condition(self):
        with pytest.raises(CampaignConfigError):
            ServiceConfig(max_rows=None, duration=None)

    def test_gauges_zero_after_run(self):
        service, _ = run_service()
        assert service.metrics.pending_rows.value == 0
        assert all(
            depth == 0 for depth in service.scorer.queue_depths().values()
        )
