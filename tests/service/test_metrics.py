"""The from-scratch metrics registry: counters, gauges, histograms, exposition.

Assertion style follows py-chaos-agent's metrics tests: drive the system,
then read labeled children directly (``DETECTIONS.labels(outcome=...)
.value``) and golden-test the text exposition.
"""

import math
import threading

import numpy as np
import pytest

from repro.errors import CampaignConfigError
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
    format_value,
)


class TestCounter:
    def test_unlabeled_inc(self):
        c = Counter("requests_total", "Requests.")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_labeled_children_are_independent(self):
        c = Counter("injections_total", "Injections.", ("failure_type", "status"))
        c.labels(failure_type="cpu", status="success").inc()
        c.labels(failure_type="cpu", status="skipped").inc(2)
        assert c.labels(failure_type="cpu", status="success").value == 1
        assert c.labels(failure_type="cpu", status="skipped").value == 2

    def test_label_names_enforced(self):
        c = Counter("x_total", "X.", ("a",))
        with pytest.raises(CampaignConfigError):
            c.labels(b="nope")
        with pytest.raises(CampaignConfigError):
            c.inc()  # labeled metric has no default child

    def test_counters_only_go_up(self):
        c = Counter("x_total", "X.")
        with pytest.raises(CampaignConfigError):
            c.inc(-1)

    def test_same_labels_same_child(self):
        c = Counter("x_total", "X.", ("a",))
        assert c.labels(a="1") is c.labels(a="1")
        assert c.labels(a="1") is not c.labels(a="2")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth", "Depth.")
        g.set(10)
        g.inc(5)
        g.dec(12)
        assert g.value == 3

    def test_gauge_goes_negative(self):
        g = Gauge("delta", "Delta.")
        g.dec(2)
        assert g.value == -2


class TestHistogram:
    def test_observations_land_in_le_buckets(self):
        h = Histogram("lat", "Latency.", buckets=(0.1, 1.0))
        child = h.labels()
        for value in (0.05, 0.1, 0.5, 2.0):
            child.observe(value)
        # le semantics: 0.1 counts both 0.05 and the exact-boundary 0.1.
        assert child.cumulative() == [2, 3, 4]
        assert child.count == 4
        assert child.total == pytest.approx(2.65)

    def test_infinite_bucket_added(self):
        h = Histogram("lat", "Latency.", buckets=(1.0,))
        assert h.bounds == (1.0, math.inf)

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(CampaignConfigError):
            Histogram("lat", "Latency.", buckets=())

    def test_latency_cdf_lowers_onto_analysis_cdf(self):
        h = Histogram("lat", "Latency.", buckets=(0.001, 0.01, 0.1))
        child = h.labels()
        for _ in range(90):
            child.observe(0.0005)
        for _ in range(9):
            child.observe(0.005)
        child.observe(0.05)
        cdf = child.latency_cdf()
        assert cdf.n == 100
        # Buckets are represented by their upper bounds.
        assert cdf.percentile(0.50) == 0.001
        assert cdf.percentile(0.95) == 0.01
        assert cdf.percentile(0.999) == 0.1

    def test_latency_cdf_percentile_matches_numpy_inverted_cdf(self):
        """Satellite pin: Cdf.percentile == np.percentile(inverted_cdf)."""
        h = Histogram("lat", "Latency.", buckets=(0.001, 0.01, 0.1, 1.0))
        child = h.labels()
        rng = np.random.default_rng(3)
        for value in rng.uniform(0, 1.2, 500):
            child.observe(float(value))
        cdf = child.latency_cdf()
        finite = [b for b in h.bounds if b != math.inf]
        samples = np.repeat(finite + [finite[-1]], child.counts)
        for q in (0.5, 0.9, 0.95, 0.99):
            assert cdf.percentile(q) == pytest.approx(
                float(np.percentile(samples, q * 100, method="inverted_cdf"))
            )

    def test_empty_histogram_has_no_cdf(self):
        h = Histogram("lat", "Latency.", buckets=(1.0,))
        with pytest.raises(CampaignConfigError):
            h.labels().latency_cdf()


class TestRegistry:
    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A.")
        with pytest.raises(CampaignConfigError):
            registry.gauge("a_total", "A again.")

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(CampaignConfigError):
            Counter("bad name!", "Nope.")

    def test_golden_exposition(self):
        """The /metrics payload, pinned byte for byte."""
        registry = MetricsRegistry()
        c = registry.counter("repro_detections_total", "Detections.", ("outcome",))
        g = registry.gauge("repro_queue_depth", "Depth.", ("host",))
        h = registry.histogram(
            "repro_latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        c.labels(outcome="true_positive").inc(3)
        c.labels(outcome="false_positive").inc()
        g.labels(host="0").set(7)
        h.observe(0.05)
        h.observe(0.5)
        assert registry.expose() == (
            "# HELP repro_detections_total Detections.\n"
            "# TYPE repro_detections_total counter\n"
            'repro_detections_total{outcome="true_positive"} 3\n'
            'repro_detections_total{outcome="false_positive"} 1\n'
            "# HELP repro_queue_depth Depth.\n"
            "# TYPE repro_queue_depth gauge\n"
            'repro_queue_depth{host="0"} 7\n'
            "# HELP repro_latency_seconds Latency.\n"
            "# TYPE repro_latency_seconds histogram\n"
            'repro_latency_seconds_bucket{le="0.1"} 1\n'
            'repro_latency_seconds_bucket{le="1"} 2\n'
            'repro_latency_seconds_bucket{le="+Inf"} 2\n'
            "repro_latency_seconds_sum 0.55\n"
            "repro_latency_seconds_count 2\n"
        )

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        c = registry.counter("x_total", "X.", ("path",))
        c.labels(path='a"b\\c\nd').inc()
        assert 'path="a\\"b\\\\c\\nd"' in registry.expose()

    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(math.inf) == "+Inf"

    def test_concurrent_increments_do_not_lose_counts(self):
        c = Counter("hits_total", "Hits.", ("worker",))

        def spin(worker: str) -> None:
            child = c.labels(worker=worker)
            for _ in range(5000):
                child.inc()

        threads = [
            threading.Thread(target=spin, args=(str(i % 2),)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.labels(worker="0").value + c.labels(worker="1").value == 20000


class TestServiceMetrics:
    def test_taxonomy_registers_once(self):
        metrics = ServiceMetrics()
        exposition = metrics.expose()
        for name in (
            "repro_rows_emitted_total", "repro_rows_scored_total",
            "repro_rows_dropped_total", "repro_detections_total",
            "repro_batches_scored_total", "repro_queue_depth",
            "repro_pending_rows", "repro_fleet_hosts",
            "repro_decision_latency_seconds",
        ):
            assert f"# TYPE {name} " in exposition

    def test_shared_registry_rejected_twice(self):
        metrics = ServiceMetrics()
        with pytest.raises(CampaignConfigError):
            ServiceMetrics(metrics.registry)  # names collide on purpose
