"""The scrape endpoint: /metrics, /healthz, 404s, graceful shutdown."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service.http import MetricsServer
from repro.service.metrics import MetricsRegistry


def get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, dict(response.headers), response.read()


@pytest.fixture
def registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_test_total", "A counter.").inc(7)
    return registry


class TestEndpoints:
    def test_metrics_scrape(self, registry):
        with MetricsServer(registry) as server:
            status, headers, body = get(f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"repro_test_total 7\n" in body

    def test_scrape_sees_live_updates(self, registry):
        with MetricsServer(registry) as server:
            _, _, before = get(f"{server.url}/metrics")
            registry.get("repro_test_total").inc(3)
            _, _, after = get(f"{server.url}/metrics")
        assert b"repro_test_total 7" in before
        assert b"repro_test_total 10" in after

    def test_healthz(self, registry):
        server = MetricsServer(registry, health=lambda: {"rows_scored": 42})
        with server:
            status, headers, body = get(f"{server.url}/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body) == {"status": "ok", "rows_scored": 42}

    def test_unknown_path_is_404(self, registry):
        with MetricsServer(registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(f"{server.url}/nope")
            assert excinfo.value.code == 404

    def test_ephemeral_port_is_bound(self, registry):
        with MetricsServer(registry) as server:
            assert server.port > 0
            assert str(server.port) in server.url


class TestLifecycle:
    def test_stop_refuses_further_connections(self, registry):
        server = MetricsServer(registry).start()
        url = server.url
        get(f"{url}/metrics")
        server.stop()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            get(f"{url}/metrics")

    def test_stop_is_idempotent(self, registry):
        server = MetricsServer(registry).start()
        server.stop()
        server.stop()

    def test_start_is_idempotent(self, registry):
        server = MetricsServer(registry)
        try:
            assert server.start() is server.start()
        finally:
            server.stop()
