"""Scenario schema validation and error provenance."""

import pytest

from repro.errors import CampaignConfigError, ScenarioError
from repro.faults.model import (
    BurstFaultModel,
    FaultModel,
    MemoryFaultModel,
    MultiBitFaultModel,
)
from repro.scenarios import scenario_from_dict
from repro.workloads.base import VirtMode


def mixed_dict():
    return {
        "name": "mixed",
        "faults": {
            "register": {"probability": 0.5},
            "multibit": {"probability": 0.2, "n_bits": 3},
            "burst": {"probability": 0.2, "n_flips": 3},
            "memory": {"probability": 0.1},
        },
    }


class TestParsing:
    def test_mixed_scenario_parses_every_kind(self):
        scenario = scenario_from_dict(mixed_dict())
        models = [type(c.model) for c in scenario.faults.components]
        assert models == [
            FaultModel, MultiBitFaultModel, BurstFaultModel, MemoryFaultModel
        ]
        assert [c.label for c in scenario.faults.components] == [
            "register", "multibit", "burst", "memory"
        ]

    def test_disabled_block_is_skipped(self):
        data = mixed_dict()
        data["faults"]["memory"]["enabled"] = False
        data["faults"]["register"]["probability"] = 0.6
        scenario = scenario_from_dict(data)
        assert [c.label for c in scenario.faults.components] == [
            "register", "multibit", "burst"
        ]

    def test_campaign_overrides_parse(self):
        data = mixed_dict()
        data["campaign"] = {
            "benchmarks": ["mcf", "postmark"],
            "mode": "hvm",
            "n_injections": 600,
        }
        scenario = scenario_from_dict(data)
        overrides = dict(scenario.campaign)
        assert overrides["benchmarks"] == ("mcf", "postmark")
        assert overrides["mode"] is VirtMode.HVM
        assert overrides["n_injections"] == 600

    def test_workload_override_parses(self):
        data = mixed_dict()
        data["workloads"] = {
            "mcf": {"reason_mix": {"mmu_update": 40.0},
                    "background_weight": 0.01},
        }
        scenario = scenario_from_dict(data)
        (override,) = scenario.workloads
        assert override.benchmark == "mcf"
        assert override.reason_mix == (("mmu_update", 40.0),)
        assert override.background_weight == 0.01


class TestValidation:
    """Every failure is a ScenarioError whose message carries the source tag
    and the dotted key path (the provenance satellite)."""

    def check(self, data, keypath):
        with pytest.raises(ScenarioError) as err:
            scenario_from_dict(data, source="test.yaml")
        assert err.value.source == "test.yaml"
        assert err.value.keypath == keypath
        assert "test.yaml" in str(err.value)
        assert keypath in str(err.value)
        return err.value

    def test_unknown_top_level_key(self):
        data = mixed_dict()
        data["fault"] = {}
        self.check(data, "fault")

    def test_missing_faults_section(self):
        self.check({"name": "x"}, "faults")

    def test_unknown_fault_kind(self):
        data = mixed_dict()
        data["faults"]["registers"] = {}
        self.check(data, "faults.registers")

    def test_unknown_block_key(self):
        data = mixed_dict()
        data["faults"]["register"]["register"] = ["rax"]
        self.check(data, "faults.register.register")

    def test_no_kind_enabled(self):
        data = {"name": "x", "faults": {
            "register": {"enabled": False},
        }}
        self.check(data, "faults")

    def test_probabilities_must_sum_to_one(self):
        data = mixed_dict()
        data["faults"]["memory"]["probability"] = 0.5
        err = self.check(data, "faults")
        assert "sum to 1.0" in str(err)

    def test_subsystem_rejected_on_register_kind(self):
        data = mixed_dict()
        data["faults"]["register"]["subsystem"] = "scheduler"
        self.check(data, "faults.register.subsystem")

    def test_unknown_subsystem(self):
        data = mixed_dict()
        data["faults"]["memory"]["subsystem"] = "vcpus"
        self.check(data, "faults.memory.subsystem")

    def test_model_constructor_errors_gain_provenance(self):
        data = mixed_dict()
        data["faults"]["multibit"]["n_bits"] = 1  # model demands >= 2
        err = self.check(data, "faults.multibit")
        assert "n_bits" in str(err)

    def test_bad_bits_pair(self):
        data = mixed_dict()
        data["faults"]["register"]["bits"] = [0, 63, 64]
        self.check(data, "faults.register.bits")

    def test_unknown_benchmark_in_workloads(self):
        data = mixed_dict()
        data["workloads"] = {"gcc": {}}
        self.check(data, "workloads.gcc")

    def test_unknown_reason_in_mix(self):
        data = mixed_dict()
        data["workloads"] = {"mcf": {"reason_mix": {"warp_drive": 1.0}}}
        self.check(data, "workloads.mcf.reason_mix.warp_drive")

    def test_negative_weight(self):
        data = mixed_dict()
        data["workloads"] = {"mcf": {"reason_mix": {"mmu_update": -1.0}}}
        self.check(data, "workloads.mcf.reason_mix.mmu_update")

    def test_unknown_campaign_key(self):
        data = mixed_dict()
        data["campaign"] = {"shards": 4}
        self.check(data, "campaign.shards")

    def test_campaign_minimum(self):
        data = mixed_dict()
        data["campaign"] = {"n_injections": 0}
        self.check(data, "campaign.n_injections")

    def test_bad_mode(self):
        data = mixed_dict()
        data["campaign"] = {"mode": "paravirt"}
        self.check(data, "campaign.mode")

    def test_unknown_campaign_benchmark(self):
        data = mixed_dict()
        data["campaign"] = {"benchmarks": ["gcc"]}
        self.check(data, "campaign.benchmarks")

    def test_scenario_error_is_a_campaign_config_error(self):
        with pytest.raises(CampaignConfigError):
            scenario_from_dict({"name": "x"})


class TestYamlFiles:
    def test_load_scenario_reads_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        del yaml
        from repro.scenarios import load_scenario

        path = tmp_path / "storm.yaml"
        path.write_text(
            "faults:\n  burst:\n    probability: 1.0\n    n_flips: 4\n"
        )
        scenario = load_scenario(path)
        # The name defaults to the file stem, the source to the path.
        assert scenario.name == "storm"
        assert scenario.source == str(path)

    def test_load_errors_carry_the_file_path(self, tmp_path):
        pytest.importorskip("yaml")
        from repro.scenarios import load_scenario

        path = tmp_path / "bad.yaml"
        path.write_text("faults:\n  register:\n    subsystem: scheduler\n")
        with pytest.raises(ScenarioError) as err:
            load_scenario(path)
        assert str(path) in str(err.value)
        assert "faults.register.subsystem" in str(err.value)

    def test_non_mapping_yaml_rejected(self, tmp_path):
        pytest.importorskip("yaml")
        from repro.scenarios import load_scenario

        path = tmp_path / "list.yaml"
        path.write_text("- a\n- b\n")
        with pytest.raises(ScenarioError) as err:
            load_scenario(path)
        assert str(path) in str(err.value)

    def test_every_example_scenario_validates(self):
        pytest.importorskip("yaml")
        from pathlib import Path

        from repro.scenarios import load_scenario

        examples = Path(__file__).resolve().parents[2] / "examples"
        paths = sorted(examples.glob("*.yaml"))
        assert paths, "examples/ should ship scenario files"
        for path in paths:
            scenario = load_scenario(path)
            assert scenario.describe()
