"""Scenario-driven campaigns: determinism, byte-identity, engine parity.

The acceptance properties of the scenario layer:

* a degenerate (probability-1.0 single-bit register) scenario is
  **byte-identical** — records and config digest — to the equivalent
  scenario-less campaign;
* a mixed scenario is deterministic in the seed, identical across the
  twin-batch and per-trial paths, and identical serial vs. sharded;
* every fault class round-trips through persistence, and pre-scenario
  record files still load.
"""

import json

import pytest

from repro.engine import CampaignEngine
from repro.engine.planner import config_digest
from repro.faults import (
    BurstFaultSpec,
    CampaignConfig,
    FaultInjectionCampaign,
    FaultSpec,
    MemoryFaultSpec,
    MultiBitFaultSpec,
)
from repro.persist import load_records, save_records
from repro.scenarios import scenario_from_dict

MIXED = {
    "name": "mixed",
    "faults": {
        "register": {"probability": 0.4},
        "multibit": {"probability": 0.2, "n_bits": 3},
        "burst": {"probability": 0.2, "n_flips": 3},
        "memory": {"probability": 0.2},
    },
}

BASE = CampaignConfig(benchmarks=("mcf",), n_injections=40, seed=3)


def mixed_config(**overrides):
    config = scenario_from_dict(MIXED).apply(BASE)
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    return config


@pytest.fixture(scope="module")
def mixed_records():
    return FaultInjectionCampaign(mixed_config()).run().records


class TestDegenerateScenario:
    """Satellite: probability-1.0 single-bit scenario == scenario-less run."""

    def test_apply_normalizes_onto_the_legacy_path(self):
        scenario = scenario_from_dict(
            {"name": "base", "faults": {"register": {"probability": 1.0}}}
        )
        config = scenario.apply(BASE)
        assert config.scenario is None
        assert config.fault_model == BASE.fault_model

    def test_records_and_digest_are_byte_identical(self, tmp_path):
        scenario = scenario_from_dict(
            {"name": "base", "faults": {"register": {}}}
        )
        config = scenario.apply(BASE)
        assert config_digest(config) == config_digest(BASE)
        plain = FaultInjectionCampaign(BASE).run().records
        via_scenario = FaultInjectionCampaign(config).run().records
        assert via_scenario == plain
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_records(plain, a)
        save_records(via_scenario, b)
        assert a.read_bytes() == b.read_bytes()

    def test_restricted_register_model_still_normalizes(self):
        scenario = scenario_from_dict({
            "name": "rip", "faults": {"register": {"registers": ["rip"]}},
        })
        config = scenario.apply(BASE)
        assert config.scenario is None
        assert config.fault_model.registers == ("rip",)

    def test_workload_override_blocks_normalization(self):
        scenario = scenario_from_dict({
            "name": "w",
            "faults": {"register": {}},
            "workloads": {"mcf": {"background_weight": 0.5}},
        })
        assert scenario.apply(BASE).scenario is scenario


class TestMixedScenario:
    def test_all_fault_classes_appear(self, mixed_records):
        classes = {r.fault_class for r in mixed_records}
        assert classes == {"register", "multibit", "burst", "memory"}

    def test_deterministic_in_the_seed(self, mixed_records):
        again = FaultInjectionCampaign(mixed_config()).run().records
        assert again == mixed_records

    def test_twin_batch_matches_per_trial(self, mixed_records):
        config = mixed_config(twin_batch=False)
        assert FaultInjectionCampaign(config).run().records == mixed_records

    def test_sharded_engine_matches_serial(self, mixed_records):
        result = CampaignEngine(mixed_config(), jobs=1, n_shards=3).run()
        assert result.records == mixed_records

    def test_scenario_changes_the_digest(self):
        assert config_digest(mixed_config()) != config_digest(BASE)

    def test_campaign_overrides_fold_into_the_config(self):
        data = dict(MIXED)
        data["campaign"] = {"benchmarks": ["postmark"], "n_injections": 8}
        config = scenario_from_dict(data).apply(BASE)
        assert config.benchmarks == ("postmark",)
        assert config.n_injections == 8

    def test_workload_override_reshapes_records(self):
        data = {
            "name": "tilted",
            "faults": MIXED["faults"],
            "workloads": {"mcf": {"reason_mix": {"mmu_update": 500.0},
                                  "background_weight": 0.0}},
        }
        tilted = scenario_from_dict(data).apply(BASE)
        plain = mixed_config()
        assert FaultInjectionCampaign(tilted).run().records != \
            FaultInjectionCampaign(plain).run().records


class TestMemoryCampaign:
    """Satellite: the once-orphaned memory path, runnable end to end."""

    def test_memory_scenario_runs_under_the_engine(self):
        scenario = scenario_from_dict(
            {"name": "mem", "faults": {"memory": {}}}
        )
        config = scenario.apply(BASE)
        serial = FaultInjectionCampaign(config).run().records
        assert serial
        assert all(r.fault_class == "memory" for r in serial)
        assert all(isinstance(r.fault, MemoryFaultSpec) for r in serial)
        engine = CampaignEngine(config, jobs=1, n_shards=2).run()
        assert engine.records == serial

    def test_subsystem_targeting_runs(self):
        scenario = scenario_from_dict({
            "name": "sched",
            "faults": {"memory": {"subsystem": "scheduler"}},
        })
        records = FaultInjectionCampaign(scenario.apply(BASE)).run().records
        assert records
        assert all(isinstance(r.fault, MemoryFaultSpec) for r in records)


class TestPersistence:
    def test_every_fault_class_round_trips(self, mixed_records, tmp_path):
        path = tmp_path / "mixed.jsonl"
        save_records(mixed_records, path)
        assert load_records(path) == mixed_records

    def test_single_bit_records_keep_the_legacy_shape(self, tmp_path):
        records = FaultInjectionCampaign(BASE).run().records
        path = tmp_path / "plain.jsonl"
        save_records(records, path)
        with open(path) as fh:
            fh.readline()  # header
            for line in fh:
                assert "fault" not in json.loads(line)

    def test_pre_scenario_record_lines_still_load(self, tmp_path):
        """A record dict without the 'fault' discriminator is a FaultSpec."""
        path = tmp_path / "legacy.jsonl"
        line = {
            "benchmark": "mcf", "vmer": 3, "register": "rax", "bit": 7,
            "index": 42, "activated": True, "failure": "benign",
            "detected_by": "undetected", "latency": None,
            "undetected_kind": None, "detail": "",
        }
        path.write_text(
            json.dumps({"format": "xentry-records-v1", "count": 1}) + "\n"
            + json.dumps(line) + "\n"
        )
        (record,) = load_records(path)
        assert record.fault == FaultSpec("rax", 7, 42)

    def test_spec_shapes_survive(self, mixed_records):
        by_class = {r.fault_class: r.fault for r in mixed_records}
        assert isinstance(by_class["multibit"], MultiBitFaultSpec)
        assert isinstance(by_class["burst"], BurstFaultSpec)
        assert len(by_class["multibit"].bits) == 3
        assert len(by_class["burst"].flips) == 3
