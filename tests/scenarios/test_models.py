"""Fault-model sampling properties: the scenario layer's model family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CampaignConfigError
from repro.faults.model import (
    BurstFaultModel,
    CompositeFaultModel,
    FaultModel,
    FaultModelComponent,
    MemoryFaultModel,
    MultiBitFaultModel,
)
from repro.hypervisor import XenHypervisor
from repro.hypervisor.layout import Slot, ValueKind
from repro.scenarios import scenario_from_dict


@pytest.fixture(scope="module")
def layout():
    return XenHypervisor(seed=11).layout


def mixed_composite():
    return CompositeFaultModel(components=(
        FaultModelComponent("register", 0.5, FaultModel()),
        FaultModelComponent("multibit", 0.2, MultiBitFaultModel(n_bits=3)),
        FaultModelComponent("burst", 0.2, BurstFaultModel(n_flips=3)),
        FaultModelComponent("memory", 0.1, MemoryFaultModel()),
    ))


class TestMultiBit:
    def test_bits_are_distinct_sorted_and_in_range(self):
        model = MultiBitFaultModel(bits=(8, 23), n_bits=4)
        rng = np.random.default_rng(3)
        for _ in range(200):
            spec = model.sample(rng, 500)
            assert len(set(spec.bits)) == 4
            assert spec.bits == tuple(sorted(spec.bits))
            assert all(8 <= b <= 23 for b in spec.bits)
            assert 0 <= spec.dynamic_index < 500
            assert spec.fault_class == "multibit"

    def test_n_bits_must_fit_the_range(self):
        with pytest.raises(CampaignConfigError):
            MultiBitFaultModel(bits=(0, 2), n_bits=4)
        with pytest.raises(CampaignConfigError):
            MultiBitFaultModel(n_bits=1)


class TestBurst:
    def test_flips_hit_distinct_registers_at_one_index(self):
        model = BurstFaultModel(n_flips=4)
        rng = np.random.default_rng(4)
        for _ in range(200):
            spec = model.sample(rng, 500)
            registers = [reg for reg, _bit in spec.flips]
            assert len(set(registers)) == 4
            assert all(0 <= bit <= 63 for _reg, bit in spec.flips)
            assert spec.fault_class == "burst"

    def test_n_flips_bounded_by_register_count(self):
        with pytest.raises(CampaignConfigError):
            BurstFaultModel(registers=("rax", "rbx"), n_flips=3)
        with pytest.raises(CampaignConfigError):
            BurstFaultModel(n_flips=1)


class TestMemorySubsystems:
    @pytest.mark.parametrize(
        "subsystem", ["scheduler", "event_channels", "grant_tables", "timekeeping"]
    )
    def test_targeted_samples_land_in_the_subsystem(self, layout, subsystem):
        from repro.faults.model import _slot_in_subsystem

        model = MemoryFaultModel(subsystem=subsystem)
        rng = np.random.default_rng(5)
        for _ in range(100):
            spec = model.sample(rng, layout)
            slot = layout.slot_at(spec.address)
            assert slot is not None
            assert _slot_in_subsystem(slot, subsystem)
            assert slot.kind is not ValueKind.SCRATCH

    def test_unknown_subsystem_rejected_eagerly(self):
        with pytest.raises(CampaignConfigError):
            MemoryFaultModel(subsystem="vcpus")

    def test_zero_word_layout_is_a_config_error(self):
        """Regression: a layout whose injectable slots total zero words used
        to fall through the size-weighted pick into AssertionError."""

        class EmptyLayout:
            all_slots = {
                "ghost": Slot(name="ghost", address=0x1000, words=0,
                              owner=0, kind=ValueKind.CONTROL),
            }

        with pytest.raises(CampaignConfigError) as err:
            MemoryFaultModel().sample(np.random.default_rng(0), EmptyLayout())
        assert "zero words" in str(err.value)

    def test_no_slots_at_all_is_a_config_error(self):
        class BareLayout:
            all_slots = {}

        with pytest.raises(CampaignConfigError):
            MemoryFaultModel().sample(np.random.default_rng(0), BareLayout())


class TestComposite:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(CampaignConfigError):
            CompositeFaultModel(components=(
                FaultModelComponent("a", 0.5, FaultModel()),
                FaultModelComponent("b", 0.4, MemoryFaultModel()),
            ))

    def test_duplicate_labels_rejected(self):
        with pytest.raises(CampaignConfigError):
            CompositeFaultModel(components=(
                FaultModelComponent("a", 0.5, FaultModel()),
                FaultModelComponent("a", 0.5, MemoryFaultModel()),
            ))

    def test_composites_cannot_nest(self):
        inner = CompositeFaultModel(components=(
            FaultModelComponent("a", 1.0, FaultModel()),
        ))
        with pytest.raises(CampaignConfigError):
            FaultModelComponent("outer", 1.0, inner)

    def test_single_component_skips_the_selector_draw(self, layout):
        """A probability-1.0 composite consumes exactly the same stream as
        its bare model — the foundation of the degenerate-scenario
        byte-identity guarantee."""
        composite = CompositeFaultModel(components=(
            FaultModelComponent("register", 1.0, FaultModel()),
        ))
        assert composite.sample(np.random.default_rng(9), 500, layout) == \
            FaultModel().sample(np.random.default_rng(9), 500)

    def test_mixture_produces_every_class(self, layout):
        rng = np.random.default_rng(10)
        classes = {
            mixed_composite().sample(rng, 500, layout).fault_class
            for _ in range(300)
        }
        assert classes == {"register", "multibit", "burst", "memory"}


class TestSamplingPurity:
    """Satellite: CompositeFaultModel sampling is pure in (seed, trial)."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        group=st.integers(min_value=0, max_value=50),
        trial=st.integers(min_value=0, max_value=50),
    )
    def test_sample_trial_is_pure_in_seed_and_coordinates(
        self, seed, group, trial
    ):
        layout = XenHypervisor(seed=11).layout
        scenario = scenario_from_dict({
            "name": "mixed",
            "faults": {
                "register": {"probability": 0.5},
                "multibit": {"probability": 0.2, "n_bits": 3},
                "burst": {"probability": 0.2, "n_flips": 3},
                "memory": {"probability": 0.1},
            },
        })
        draw = lambda: scenario.sample_trial(  # noqa: E731
            seed, "mcf", "pv", group, trial, run_length=400, layout=layout
        )
        first, second = draw(), draw()
        assert first == second

    def test_trials_draw_from_independent_streams(self, layout):
        scenario = scenario_from_dict(
            {"name": "m", "faults": {"memory": {}}}
        )
        draws = [
            scenario.sample_trial(7, "mcf", "pv", 0, t, run_length=400,
                                  layout=layout)
            for t in range(20)
        ]
        # Purity makes repeats identical; independence makes the set diverse.
        assert len(set(draws)) > 1

    def test_renaming_changes_neither_samples_nor_digest(self, layout):
        from repro.engine.planner import payload_digest

        base = {"faults": {"memory": {}, "register": {"probability": 0.0,
                                                      "enabled": False}}}
        a = scenario_from_dict({"name": "alpha", **base})
        b = scenario_from_dict({"name": "beta", **base})
        assert a.sample_trial(3, "mcf", "pv", 0, 0, run_length=100,
                              layout=layout) == \
            b.sample_trial(3, "mcf", "pv", 0, 0, run_length=100, layout=layout)
        assert payload_digest(a.digest_payload()) == \
            payload_digest(b.digest_payload())
