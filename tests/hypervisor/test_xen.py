"""XenHypervisor: activation execution, determinism, interception, outputs."""

import pytest

from repro.errors import MachineConfigError
from repro.hypervisor import (
    Activation,
    ExitCategory,
    OutputRef,
    REGISTRY,
    XenHypervisor,
)
from repro.machine import AssertionViolation, Op


@pytest.fixture(scope="module")
def hv() -> XenHypervisor:
    return XenHypervisor(seed=42)


def act(name: str, *args: int, domain=1, seq=0) -> Activation:
    return Activation(vmer=REGISTRY.by_name(name).vmer, args=args, domain_id=domain, seq=seq)


class TestConstruction:
    def test_every_handler_has_an_entry_label(self, hv):
        for reason in REGISTRY:
            assert hv.program.address_of(reason.handler_label) >= hv.program.base

    def test_image_fits_text_region(self, hv):
        assert hv.program.size <= hv.memory_map.text_size

    def test_subroutines_present(self, hv):
        for sub in ("sub.memcpy", "sub.evtchn_set_pending", "sub.sched_pick"):
            hv.program.address_of(sub)


class TestExecution:
    def test_every_reason_executes_fault_free(self, hv):
        hv.reset()
        for i, reason in enumerate(REGISTRY):
            res = hv.execute(Activation(vmer=reason.vmer, args=(3, 2, 1), domain_id=1, seq=i))
            assert res.exit_op is Op.VMENTRY
            assert res.instructions > 0

    def test_features_match_table1_shape(self, hv):
        hv.reset()
        a = act("mmu_update", 10, 1)
        res = hv.execute(a)
        vmer, rt, br, rm, wm = res.features
        assert vmer == a.vmer
        assert rt == res.instructions
        assert br > 0 and rm > 0 and wm > 0

    def test_footprint_scales_with_args(self, hv):
        hv.reset()
        small = hv.execute(act("mmu_update", 2, 0, seq=1))
        large = hv.execute(act("mmu_update", 50, 0, seq=2))
        assert large.instructions > small.instructions
        assert large.sample.stores > small.sample.stores

    def test_different_reasons_have_different_paths(self, hv):
        hv.reset()
        a = hv.execute(act("xen_version", 1, seq=3))
        b = hv.execute(act("set_timer_op", 1, seq=3))
        assert a.path_hash != b.path_hash

    def test_invalid_domain_rejected(self, hv):
        with pytest.raises(MachineConfigError):
            hv.execute(Activation(vmer=0, args=(1,), domain_id=99))

    def test_too_many_args_rejected(self):
        with pytest.raises(MachineConfigError):
            Activation(vmer=0, args=(1, 2, 3, 4, 5, 6))


class TestDeterminism:
    def test_same_activation_same_state_same_result(self, hv):
        hv.reset()
        snap = hv.checkpoint()
        a = act("grant_table_op", 20, 1, seq=7)
        r1 = hv.execute(a)
        hv.restore(snap)
        r2 = hv.execute(a)
        assert r1.path_hash == r2.path_hash
        assert r1.sample == r2.sample
        assert r1.tsc_end == r2.tsc_end

    def test_reset_restores_boot_state(self, hv):
        hv.reset()
        baseline = hv.execute(act("event_channel_op", 5, 0, seq=1))
        hv.reset()
        again = hv.execute(act("event_channel_op", 5, 0, seq=1))
        assert baseline.path_hash == again.path_hash

    def test_state_evolves_without_reset(self, hv):
        """Event sends accumulate pending bits -> second run takes the
        'already pending' early exit (shorter path)."""
        hv.reset()
        first = hv.execute(act("event_channel_op", 5, 0, seq=1))
        second = hv.execute(act("event_channel_op", 5, 0, seq=1))
        assert second.instructions < first.instructions


class TestEventChannelSemantics:
    def test_send_sets_pending_bit_and_marks_vcpu(self, hv):
        hv.reset()
        hv.execute(act("event_channel_op", 9, 0, domain=2))
        dom = hv.domain(2)
        assert dom.is_port_pending(9)
        assert dom.vcpu(0).pending

    def test_masked_port_drops_event(self, hv):
        hv.reset()
        hv.domain(2).mask_port(9)
        # Re-checkpoint so the masked state is the baseline for execute.
        hv.execute(act("event_channel_op", 9, 0, domain=2))
        dom = hv.domain(2)
        assert not dom.is_port_pending(9)
        assert not dom.vcpu(0).pending

    def test_multi_port_send(self, hv):
        hv.reset()
        # rsi=2 -> (2 & 7) + 1 = 3 sends starting at port 4, stride 1 + vmer%3.
        reason = REGISTRY.by_name("event_channel_op")
        stride = 1 + reason.vmer % 3
        hv.execute(act("event_channel_op", 4, 2, domain=1))
        dom = hv.domain(1)
        assert dom.is_port_pending(4)
        assert dom.is_port_pending(4 + stride)
        assert dom.is_port_pending(4 + 2 * stride)


class TestTimeDelivery:
    def test_timer_op_writes_time_slots(self, hv):
        hv.reset()
        a = act("set_timer_op", 5000, domain=1, seq=11)
        hv.execute(a)
        vcpu = hv.vcpu(1)
        assert vcpu.system_time > 0
        outputs = hv.read_outputs(a)
        assert any(v == vcpu.system_time for v in outputs.values())

    def test_time_advances_with_sequence(self, hv):
        hv.reset()
        hv.execute(act("set_timer_op", 5000, domain=1, seq=1))
        t1 = hv.vcpu(1).system_time
        hv.execute(act("set_timer_op", 5000, domain=1, seq=100))
        t2 = hv.vcpu(1).system_time
        assert t2 > t1


class TestCpuidEmulation:
    def test_emulation_writes_guest_regs(self, hv):
        """The Section II.A long-latency example: cpuid leaf 0 ->
        vendor string lands in the guest's register frame."""
        hv.reset()
        a = act("hvm_cpuid", 0, domain=2, seq=5)
        hv.execute(a)
        vcpu = hv.vcpu(2)
        assert vcpu.reg(1) == 0x756E6547  # ebx = "Genu"
        assert vcpu.reg(3) == 0x49656E69  # edx = "ineI"

    def test_guest_rip_advanced_past_instruction(self, hv):
        hv.reset()
        a = act("hvm_cpuid", 1, domain=2, seq=6)
        hv.prepare(a)
        rip_before = hv.vcpu(2).rip
        hv.reset()
        hv.execute(a)
        assert hv.vcpu(2).rip == rip_before + 2


class TestSchedulerInvariant:
    def test_idle_path_checks_listing2_invariant(self, hv):
        """Corrupt the mode *check* by poisoning memory between store and
        re-load is impossible fault-free; instead verify the invariant
        assertion exists and passes on the legal path."""
        hv.reset()
        res = hv.execute(act("sched_op", 1, 0, domain=1))  # rdi=1 -> idle path
        assert res.exit_op is Op.VMENTRY

    def test_context_save_restore_roundtrip(self, hv):
        hv.reset()
        vcpu = hv.vcpu(1)
        a = act("sched_op", 0, 0, domain=1, seq=3)
        hv.prepare(a)
        vcpu.set_reg(0, 0xAAAA)
        vcpu.set_reg(1, 0xBBBB)
        vcpu.set_reg(2, 0xCCCC)
        snap = hv.checkpoint()
        hv.restore(snap)
        hv.cpu.pmu.arm()
        entry = hv.program.address_of(REGISTRY.by_name("sched_op").handler_label)
        hv.cpu.run(hv.program, entry)
        assert vcpu.reg(0) == 0xAAAA and vcpu.reg(1) == 0xBBBB and vcpu.reg(2) == 0xCCCC


class TestAssertionsUnderCorruption:
    def test_idle_invariant_fires_when_mode_corrupted(self):
        """Drive the sched idle path with an injection that corrupts the
        re-loaded mode value: the Listing 2 assertion must fire."""
        hv = XenHypervisor(seed=7)
        a = act("sched_op", 1, 0, domain=1, seq=1)
        # Find the dynamic index of the assert by scanning: inject a flip into
        # r11 right before the assert_eq (r11 holds the re-loaded mode).
        golden = hv.execute(a)
        detected = False
        for idx in range(golden.instructions):
            hv.reset()
            hv.cpu.schedule_register_flip(idx, "r11", 0)
            try:
                hv.execute(a)
            except AssertionViolation as exc:
                if exc.assertion_id == "vcpu_idle_invariant":
                    detected = True
                    break
            except Exception:
                continue
        assert detected


class TestOutputs:
    def test_output_addresses_resolve_per_domain(self, hv):
        a1 = act("hvm_cpuid", 0, domain=1)
        a2 = act("hvm_cpuid", 0, domain=2)
        addrs1 = {addr for addr, _, _ in hv.output_addresses(a1)}
        addrs2 = {addr for addr, _, _ in hv.output_addresses(a2)}
        assert addrs1.isdisjoint(addrs2)

    def test_output_refs_match_handler_family(self, hv):
        refs = {ref for _, _, ref in hv.output_addresses(act("set_timer_op", 1))}
        assert refs == {OutputRef.VCPU_TIME, OutputRef.WALLCLOCK}

    def test_categories_have_expected_output_presence(self, hv):
        for reason in REGISTRY:
            a = Activation(vmer=reason.vmer, args=(1,), domain_id=1)
            outs = hv.output_addresses(a)
            if reason.category in (ExitCategory.COMMON_IRQ, ExitCategory.APIC):
                assert outs, f"{reason.name} should deliver a trap number"
