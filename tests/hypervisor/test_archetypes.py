"""Per-archetype handler behaviour: each family's observable semantics."""

import pytest

from repro.hypervisor import Activation, Archetype, REGISTRY, XenHypervisor
from repro.hypervisor.handlers.registry import handler_params_for


@pytest.fixture()
def hv() -> XenHypervisor:
    return XenHypervisor(seed=61)


def act(name: str, *args: int, domain=1, seq=0) -> Activation:
    return Activation(vmer=REGISTRY.by_name(name).vmer, args=args,
                      domain_id=domain, seq=seq)


class TestFamilyAssignments:
    """The registry mirrors what each real Xen entry point does."""

    @pytest.mark.parametrize(
        "name,archetype",
        [
            ("mmu_update", Archetype.MEMORY_OP),
            ("set_trap_table", Archetype.TABLE_UPDATE),
            ("grant_table_op", Archetype.BULK_COPY),
            ("event_channel_op", Archetype.EVENT_OP),
            ("sched_op", Archetype.SCHED_OP),
            ("set_timer_op", Archetype.TIME_OP),
            ("xen_version", Archetype.INFO_QUERY),
            ("general_protection", Archetype.EMULATE_CPUID),
            ("page_fault", Archetype.EXCEPTION_FIXUP),
            ("do_irq", Archetype.IRQ_ACK),
            ("do_softirq", Archetype.SOFTIRQ_DRAIN),
            ("hvm_io_instruction", Archetype.IO_EMULATE),
            ("hvm_cpuid", Archetype.EMULATE_CPUID),
        ],
    )
    def test_family(self, name, archetype):
        reason = REGISTRY.by_name(name)
        assert handler_params_for(name, reason.vmer).archetype is archetype

    def test_every_reason_has_a_family(self):
        for reason in REGISTRY:
            params = handler_params_for(reason.name, reason.vmer)
            assert params.archetype in Archetype


class TestIrqAck:
    def test_delivers_vector_to_current_vcpu(self, hv):
        hv.execute(act("do_irq", 11, domain=2))
        assert hv.vcpu(2).trapno == 11

    def test_raises_matching_softirq_bit(self, hv):
        hv.execute(act("do_irq", 5))
        bits = hv.memory.read_u64(hv.layout.softirq_bits.address)
        assert bits & (1 << 5)

    def test_descriptor_restored_after_service(self, hv):
        before = hv.memory.read_u64(hv.layout.irq_descs.word_address(9))
        hv.execute(act("do_irq", 9))
        assert hv.memory.read_u64(hv.layout.irq_descs.word_address(9)) == before

    def test_scale_varies_across_apic_handlers(self, hv):
        lengths = {
            name: hv.execute(act(name, 3, seq=i)).instructions
            for i, name in enumerate(("apic_timer", "call_function", "cmci"))
        }
        assert len(set(lengths.values())) > 1


class TestTableUpdate:
    def test_installs_entries_from_guest_request(self, hv):
        hv.execute(act("set_trap_table", 6, 2))
        table = hv.layout.trap_table
        installed = [hv.memory.read_u64(table.word_address(i)) for i in range(6)]
        assert any(installed)  # some entries pass the privilege check

    def test_oversized_count_rejected_without_installing(self, hv):
        hv.reset()
        before = hv.memory.snapshot_region(hv.memory.region("hypervisor_heap"))
        # Drive the handler directly with an illegal count (the generator
        # never produces one; a fault would).
        hv.prepare(act("set_trap_table", 5, 1))
        hv.cpu.regs["rdi"] = 10_000
        entry = hv.program.address_of(REGISTRY.by_name("set_trap_table").handler_label)
        hv.cpu.run(hv.program, entry)
        table = hv.layout.trap_table
        diffs = hv.memory.diff_region(hv.memory.region("hypervisor_heap"), before)
        assert not any(table.contains(a) for a in diffs)

    def test_entries_are_32_bit_sanitized(self, hv):
        hv.reset()
        hv.execute(act("set_gdt", 8, 3))
        table = hv.layout.trap_table
        for i in range(table.words):
            assert hv.memory.read_u64(table.word_address(i)) < (1 << 32)


class TestMemoryOp:
    def test_footprint_scales_with_count(self, hv):
        small = hv.execute(act("mmu_update", 3, 0, seq=1))
        large = hv.execute(act("mmu_update", 20, 0, seq=2))
        assert large.instructions > small.instructions

    def test_pte_writes_carry_present_bits(self, hv):
        hv.reset()
        hv.execute(act("mmu_update", 10, 0))
        scratch = hv.layout.scratch
        ptes = [
            hv.memory.read_u64(scratch.word_address(i))
            for i in range(10)
            if hv.memory.read_u64(scratch.word_address(i))
        ]
        assert ptes and all(p & 0x67 == 0x67 for p in ptes)


class TestBulkCopy:
    def test_publishes_into_current_domain_grant_window(self, hv):
        hv.reset()
        hv.execute(act("grant_table_op", 10, 1, domain=2))
        dom2 = hv.layout.domains[2]
        values = [
            hv.memory.read_u64(dom2.grant_frames.word_address(i))
            for i in range(dom2.grant_frames.words)
        ]
        assert any(values)
        # The *other* guest's window is untouched.
        dom1 = hv.layout.domains[1]
        assert not any(
            hv.memory.read_u64(dom1.grant_frames.word_address(i))
            for i in range(dom1.grant_frames.words)
        )

    def test_copy_length_drives_loads_and_stores(self, hv):
        hv.reset()
        a = hv.execute(act("console_io", 4, 0, seq=1))
        b = hv.execute(act("console_io", 20, 0, seq=2))
        assert b.sample.loads > a.sample.loads
        assert b.sample.stores > a.sample.stores


class TestSchedOp:
    def test_updates_current_vcpu_cookie(self, hv):
        hv.reset()
        hv.execute(act("sched_op", 0, 0))
        cookie = hv.memory.read_u64(hv.layout.globals_.word_address(0))
        assert cookie < 64  # a plausible run-queue cookie

    def test_idle_path_is_longer_than_yield(self, hv):
        hv.reset()
        yield_run = hv.execute(act("sched_op", 0, 0, seq=1))
        idle_run = hv.execute(act("sched_op", 1, 0, seq=2))
        assert idle_run.instructions > yield_run.instructions

    def test_vcpu_mode_returns_to_running_after_idle(self, hv):
        hv.reset()
        hv.execute(act("sched_op", 1, 0))
        assert hv.vcpu(1).mode == 1  # VCPU_MODE_RUNNING (woken)


class TestTimeOp:
    def test_wallclock_split_is_consistent(self, hv):
        hv.reset()
        hv.execute(act("set_timer_op", 900, seq=40))
        dom = hv.domain(1)
        assert dom.wallclock_nsec < (1 << 30)

    def test_deadline_lands_in_timer_heap(self, hv):
        hv.reset()
        hv.execute(act("set_timer_op", 777, seq=2))
        heap = hv.layout.timer_heap
        values = [hv.memory.read_u64(heap.word_address(i)) for i in range(heap.words)]
        assert 777 in values


class TestInfoQuery:
    def test_selector_dispatch_changes_result(self, hv):
        results = set()
        for i, selector in enumerate((0, 1, 2, 3)):
            hv.reset()
            hv.execute(act("xen_version", selector, seq=i))
            results.add(hv.vcpu(1).rax)
        assert len(results) >= 3  # distinct query paths

    def test_result_is_32_bit(self, hv):
        for selector in (0, 1, 2, 3):
            hv.reset()
            hv.execute(act("get_debugreg", selector))
            assert hv.vcpu(1).rax < (1 << 32)


class TestIoEmulate:
    def test_write_then_read_roundtrips_through_device(self, hv):
        hv.reset()
        # rdx=1 selects the write path; then read the same port back.
        hv.execute(act("hvm_io_instruction", 5, 0xBEEF, 1, seq=1))
        hv.execute(act("hvm_io_instruction", 5, 0, 0, seq=2))
        flavor = REGISTRY.by_name("hvm_io_instruction").vmer
        assert hv.vcpu(1).rax == 0xBEEF | (flavor << 24)

    def test_io_completion_raises_softirq(self, hv):
        hv.reset()
        hv.execute(act("hvm_io_instruction", 3, 1, 1))
        assert hv.memory.read_u64(hv.layout.softirq_bits.address)


class TestSoftirqDrain:
    def test_drains_pending_bits(self, hv):
        hv.reset()
        hv.execute(act("do_irq", 6))  # raises bit 6
        assert hv.memory.read_u64(hv.layout.softirq_bits.address) & (1 << 6)
        hv.execute(act("do_softirq", 0, seq=1))
        assert not hv.memory.read_u64(hv.layout.softirq_bits.address) & (1 << 6)

    def test_drain_length_tracks_pending_population(self, hv):
        hv.reset()
        empty = hv.execute(act("do_softirq", 0, seq=1))
        hv.reset()
        for i, irq in enumerate((1, 9, 17, 25)):
            hv.execute(act("do_irq", irq, seq=i))
        busy = hv.execute(act("do_softirq", 0, seq=9))
        assert busy.instructions > empty.instructions
