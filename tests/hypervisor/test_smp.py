"""Multi-core execution: per-CPU stacks, counters and detection independence."""

import pytest

from repro.errors import MachineConfigError
from repro.hypervisor import Activation, MemoryMap, REGISTRY, XenHypervisor
from repro.machine import HardwareException, Vector


@pytest.fixture(scope="module")
def smp() -> XenHypervisor:
    return XenHypervisor(seed=13, n_cores=4)


def act(name: str, *args: int, seq=0, domain=1) -> Activation:
    return Activation(vmer=REGISTRY.by_name(name).vmer, args=args,
                      domain_id=domain, seq=seq)


class TestTopology:
    def test_four_cores_created(self, smp):
        assert len(smp.cores) == 4
        assert smp.cpu is smp.cores[0]

    def test_core_stacks_are_disjoint_regions(self, smp):
        tops = {smp.memory_map.stack_top_for(i) for i in range(4)}
        assert len(tops) == 4
        for i in range(4):
            region = smp.memory.region(f"cpu_stack{i}")
            assert region.contains(smp.memory_map.stack_top_for(i) - 8)

    def test_invalid_core_counts_rejected(self):
        with pytest.raises(MachineConfigError):
            XenHypervisor(n_cores=0)
        with pytest.raises(MachineConfigError):
            XenHypervisor(n_cores=4, memory_map=MemoryMap(n_cpus=2))

    def test_stack_guard_gap_is_unmapped(self, smp):
        gap_addr = smp.memory_map.stack_top_for(0) + 8
        assert smp.memory.region_at(gap_addr) is None


class TestPerCoreExecution:
    def test_each_core_executes_independently(self, smp):
        smp.reset()
        results = [
            smp.execute(act("xen_version", 1, seq=i), core_id=i)
            for i in range(4)
        ]
        assert all(r.instructions > 0 for r in results)

    def test_counters_are_not_shared_between_cores(self, smp):
        """Section IV: 'Logical cores do not share performance counters'."""
        smp.reset()
        smp.execute(act("mmu_update", 12, 1), core_id=1)
        assert smp.cores[1].pmu.totals().instructions > 0
        assert smp.cores[2].pmu.totals().instructions == 0

    def test_shared_memory_is_visible_across_cores(self, smp):
        """Cores share the hypervisor heap: an event sent on core 0 is
        pending when core 3 inspects the domain."""
        smp.reset()
        smp.execute(act("event_channel_op", 21, 0, domain=2), core_id=0)
        assert smp.domain(2).is_port_pending(21)
        res = smp.execute(act("event_channel_op", 21, 0, domain=2, seq=1), core_id=3)
        # Second send on another core takes the already-pending early exit.
        assert res.instructions < 60

    def test_stack_overflow_on_one_core_faults_in_the_gap(self, smp):
        """A corrupted RSP below core 1's stack lands in the guard gap and
        faults instead of corrupting core 0's stack."""
        smp.reset()
        smp.prepare(act("sched_op", 0, 0), core_id=1)
        smp.cores[1].regs["rsp"] = smp.memory_map.stack_base_for(1) - 8
        entry = smp.program.address_of(REGISTRY.by_name("sched_op").handler_label)
        with pytest.raises(HardwareException) as info:
            smp.cores[1].run(smp.program, entry)
        assert info.value.vector in (Vector.STACK_FAULT, Vector.PAGE_FAULT)

    def test_injection_on_one_core_leaves_others_clean(self, smp):
        smp.reset()
        smp.cores[2].schedule_register_flip(3, "rbp", 41)
        with pytest.raises(HardwareException):
            smp.execute(act("mmu_update", 8, 1), core_id=2)
        # Core 0 still executes the same activation cleanly.
        res = smp.execute(act("mmu_update", 8, 1), core_id=0)
        assert res.instructions > 0

    def test_results_match_single_core_hypervisor(self, smp):
        """Per-core execution is observationally identical to a single-core
        platform given the same activation and state."""
        single = XenHypervisor(seed=13)
        single.reset()
        smp.reset()
        a = act("grant_table_op", 10, 2, seq=5)
        assert single.execute(a).features == smp.execute(a, core_id=3).features
