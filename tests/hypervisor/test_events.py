"""Event-channel control plane: allocation, binding, routed delivery."""

import pytest

from repro.errors import CampaignConfigError
from repro.hypervisor import XenHypervisor
from repro.hypervisor.events import ChannelState, EventChannelManager


@pytest.fixture()
def manager() -> EventChannelManager:
    return EventChannelManager(XenHypervisor(seed=81))


class TestAllocation:
    def test_ports_allocate_lowest_first(self, manager):
        a = manager.alloc_unbound(1)
        b = manager.alloc_unbound(1)
        assert (a.port, b.port) == (0, 1)
        assert a.state is ChannelState.UNBOUND

    def test_domains_have_independent_port_spaces(self, manager):
        a = manager.alloc_unbound(1)
        b = manager.alloc_unbound(2)
        assert a.port == b.port == 0

    def test_exhaustion_raises(self, manager):
        for _ in range(256):
            manager.alloc_unbound(1)
        with pytest.raises(CampaignConfigError):
            manager.alloc_unbound(1)

    def test_unknown_domain_rejected(self, manager):
        with pytest.raises(CampaignConfigError):
            manager.alloc_unbound(99)


class TestInterdomain:
    def test_bind_creates_symmetric_pair(self, manager):
        local = manager.alloc_unbound(1)
        remote = manager.bind_interdomain(local, 2)
        assert local.state is remote.state is ChannelState.INTERDOMAIN
        assert (local.remote_domain, local.remote_port) == (2, remote.port)
        assert (remote.remote_domain, remote.remote_port) == (1, local.port)

    def test_binding_a_bound_port_rejected(self, manager):
        local = manager.alloc_unbound(1)
        manager.bind_interdomain(local, 2)
        with pytest.raises(CampaignConfigError):
            manager.bind_interdomain(local, 0)

    def test_notify_signals_the_peer_not_self(self, manager):
        local = manager.alloc_unbound(1)
        remote = manager.bind_interdomain(local, 2)
        manager.notify(local)
        assert manager.is_pending(remote)
        assert not manager.is_pending(local)
        assert local.notifications == 1

    def test_notify_marks_peer_vcpu(self, manager):
        local = manager.alloc_unbound(1)
        manager.bind_interdomain(local, 2)
        manager.notify(local)
        assert manager.hv.vcpu(2).pending

    def test_close_unbinds_the_peer(self, manager):
        local = manager.alloc_unbound(1)
        remote = manager.bind_interdomain(local, 2)
        manager.close(local)
        assert local.state is ChannelState.FREE
        assert remote.state is ChannelState.UNBOUND
        assert remote.remote_domain is None

    def test_closed_port_is_reusable(self, manager):
        local = manager.alloc_unbound(1)
        manager.close(local)
        again = manager.alloc_unbound(1)
        assert again.port == local.port


class TestVirqAndPirq:
    def test_virq_delivery_sets_the_bound_port(self, manager):
        channel = manager.bind_virq(1, virq=0)  # VIRQ_TIMER
        manager.raise_virq(1, 0)
        assert manager.is_pending(channel)

    def test_double_virq_binding_rejected(self, manager):
        manager.bind_virq(1, virq=3)
        with pytest.raises(CampaignConfigError):
            manager.bind_virq(1, virq=3)

    def test_unbound_virq_delivery_rejected(self, manager):
        with pytest.raises(CampaignConfigError):
            manager.raise_virq(1, 7)

    def test_pirq_routes_to_owning_guest(self, manager):
        channel = manager.bind_pirq(2, pirq=14)  # the disk line
        manager.raise_pirq(14)
        assert manager.is_pending(channel)
        assert manager.hv.vcpu(2).pending

    def test_pirq_line_is_exclusive(self, manager):
        manager.bind_pirq(1, pirq=10)
        with pytest.raises(CampaignConfigError):
            manager.bind_pirq(2, pirq=10)

    def test_notify_on_free_channel_rejected(self, manager):
        channel = manager.alloc_unbound(1)
        manager.close(channel)
        with pytest.raises(CampaignConfigError):
            manager.notify(channel)


class TestIntrospection:
    def test_channels_of_lists_live_ports_only(self, manager):
        a = manager.alloc_unbound(1)
        manager.bind_virq(1, virq=2)
        manager.close(a)
        live = manager.channels_of(1)
        assert len(live) == 1
        assert live[0].state is ChannelState.VIRQ

    def test_delivery_goes_through_real_handler_code(self, manager):
        """Signalling is executed hypervisor code, not bookkeeping: the
        activation result carries a genuine dynamic footprint."""
        local = manager.alloc_unbound(1)
        manager.bind_interdomain(local, 2)
        result = manager.notify(local)
        assert result.instructions > 10
        assert result.sample.stores > 0
