"""Credit-scheduler semantics: priorities, fairness, work stealing."""

import pytest

from repro.errors import CampaignConfigError
from repro.hypervisor.scheduler import CreditScheduler, Priority, SchedVcpu


class TestRegistration:
    def test_vcpus_start_with_credits(self):
        sched = CreditScheduler(n_cpus=2)
        vcpu = sched.add_vcpu(1)
        assert vcpu.credits > 0
        assert vcpu.priority is Priority.UNDER

    def test_duplicate_rejected(self):
        sched = CreditScheduler()
        sched.add_vcpu(1, 0)
        with pytest.raises(CampaignConfigError):
            sched.add_vcpu(1, 0)

    def test_validation(self):
        with pytest.raises(CampaignConfigError):
            CreditScheduler(n_cpus=0)
        with pytest.raises(CampaignConfigError):
            SchedVcpu(1, 0, weight=0)
        with pytest.raises(CampaignConfigError):
            CreditScheduler().vcpu(9, 9)


class TestPriorities:
    def test_exhausted_credits_drop_to_over(self):
        sched = CreditScheduler()
        vcpu = sched.add_vcpu(1)
        vcpu.credits = 0
        assert vcpu.priority is Priority.OVER

    def test_blocked_vcpu_is_idle_priority(self):
        sched = CreditScheduler()
        sched.add_vcpu(1)
        sched.block(1)
        assert sched.vcpu(1).priority is Priority.IDLE

    def test_under_runs_before_over(self):
        sched = CreditScheduler()
        hungry = sched.add_vcpu(1, cpu=0)
        hungry.credits = 0                 # OVER
        fresh = sched.add_vcpu(2, cpu=0)   # UNDER
        assert sched.schedule(0) is fresh

    def test_blocked_vcpus_never_scheduled(self):
        sched = CreditScheduler()
        sched.add_vcpu(1, cpu=0)
        sched.block(1)
        assert sched.schedule(0) is None

    def test_wake_makes_schedulable_again(self):
        sched = CreditScheduler()
        sched.add_vcpu(1, cpu=0)
        sched.block(1)
        sched.schedule(0)
        sched.wake(1)
        assert sched.schedule(0) is sched.vcpu(1)


class TestAccounting:
    def test_tick_debits_running_vcpu(self):
        sched = CreditScheduler()
        vcpu = sched.add_vcpu(1, cpu=0)
        before = vcpu.credits
        sched.schedule(0)
        sched.tick(0)
        assert vcpu.credits == before - 100
        assert vcpu.total_ticks == 1

    def test_replenish_is_weight_proportional(self):
        sched = CreditScheduler(n_cpus=1)
        light = sched.add_vcpu(1, weight=128)
        heavy = sched.add_vcpu(2, weight=512)
        light.credits = heavy.credits = 0
        sched.replenish()
        assert heavy.credits > light.credits

    def test_credits_are_capped(self):
        sched = CreditScheduler()
        vcpu = sched.add_vcpu(1)
        for _ in range(10):
            sched.replenish()
        assert vcpu.credits <= 2 * 300  # bounded accumulation


class TestFairness:
    def test_equal_weights_share_equally(self):
        sched = CreditScheduler(n_cpus=2)
        for d in range(4):
            sched.add_vcpu(d)
        ticks = sched.run_epochs(600)
        values = list(ticks.values())
        assert max(values) - min(values) <= 0.15 * max(values)

    def test_cpu_time_tracks_weights(self):
        """The credit scheduler's defining property: CPU share ~ weight."""
        sched = CreditScheduler(n_cpus=1)
        sched.add_vcpu(1, weight=256)
        sched.add_vcpu(2, weight=768)  # 3x the weight
        ticks = sched.run_epochs(1200)
        ratio = ticks[(2, 0)] / max(1, ticks[(1, 0)])
        assert 1.8 < ratio < 4.5

    def test_single_runnable_vcpu_gets_everything(self):
        sched = CreditScheduler(n_cpus=1)
        sched.add_vcpu(1)
        sched.add_vcpu(2)
        sched.block(2)
        ticks = sched.run_epochs(100)
        assert ticks[(1, 0)] == 100
        assert ticks[(2, 0)] == 0


class TestWorkStealing:
    def test_idle_cpu_steals_runnable_work(self):
        sched = CreditScheduler(n_cpus=2)
        sched.add_vcpu(1, cpu=0)
        sched.add_vcpu(2, cpu=0)   # both homed on CPU 0
        first = sched.schedule(0)
        stolen = sched.schedule(1)  # CPU 1 has an empty queue -> steals
        assert first is not None and stolen is not None
        assert first is not stolen

    def test_no_double_running(self):
        """A VCPU can never run on two CPUs at once."""
        sched = CreditScheduler(n_cpus=3)
        sched.add_vcpu(1, cpu=0)
        running = [sched.schedule(cpu) for cpu in range(3)]
        assert sum(1 for v in running if v is not None) == 1

    def test_both_cpus_busy_when_work_abounds(self):
        sched = CreditScheduler(n_cpus=2)
        for d in range(4):
            sched.add_vcpu(d, cpu=0)
        assert sched.schedule(0) is not None
        assert sched.schedule(1) is not None
