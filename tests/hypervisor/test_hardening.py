"""Section VI hardening: stack-value redundancy and rdtsc variation checks."""

import pytest

from repro.faults import FaultSpec, capture_golden, run_trial
from repro.faults.outcomes import DetectionTechnique, UndetectedKind
from repro.hypervisor import Activation, Hardening, REGISTRY, XenHypervisor
from repro.machine import AssertionViolation, Op


@pytest.fixture(scope="module")
def baseline() -> XenHypervisor:
    return XenHypervisor(seed=19)


@pytest.fixture(scope="module")
def hardened() -> XenHypervisor:
    return XenHypervisor(
        seed=19,
        hardening=Hardening(stack_redundancy=True, time_variation_check=True),
    )


def sched_act(seq=0) -> Activation:
    return Activation(vmer=REGISTRY.by_name("sched_op").vmer, args=(0, 0),
                      domain_id=1, seq=seq)


def timer_act(seq=0) -> Activation:
    return Activation(vmer=REGISTRY.by_name("set_timer_op").vmer, args=(500,),
                      domain_id=1, seq=seq)


class TestFaultFreeBehaviour:
    def test_hardened_image_runs_every_reason_cleanly(self, hardened):
        hardened.reset()
        for i, reason in enumerate(REGISTRY):
            res = hardened.execute(
                Activation(vmer=reason.vmer, args=(3, 2), domain_id=1, seq=i)
            )
            assert res.exit_op is Op.VMENTRY

    def test_hardening_costs_extra_instructions(self, baseline, hardened):
        baseline.reset()
        hardened.reset()
        plain = baseline.execute(sched_act())
        guarded = hardened.execute(sched_act())
        assert guarded.instructions > plain.instructions

    def test_time_still_delivered_under_hardening(self, hardened):
        hardened.reset()
        hardened.execute(timer_act(seq=3))
        assert hardened.vcpu(1).system_time > 0


class TestStackRedundancy:
    def _sweep(self, hv, register: str) -> set[str]:
        """Inject into every (index, a-few-bits) of the sched path and
        collect the detection techniques that fire."""
        hv.reset()
        act = sched_act()
        golden = capture_golden(hv, act)
        seen: set[str] = set()
        for idx in range(golden.result.instructions):
            for bit in (9, 21, 33):
                record = run_trial(hv, act, FaultSpec(register, bit, idx),
                                   golden=golden)
                if record.manifested:
                    seen.add(record.detected_by.value + ":" + record.detail[:16])
        return seen

    def test_redundancy_assertion_fires_on_stack_corruption(self, hardened):
        """A flip riding the duplicated stack slots trips the check."""
        hv = hardened
        hv.reset()
        act = sched_act()
        golden = capture_golden(hv, act)
        detected = False
        for idx in range(golden.result.instructions):
            for bit in (9, 21, 33):
                record = run_trial(hv, act, FaultSpec("r10", bit, idx), golden=golden)
                if (record.detected_by is DetectionTechnique.SW_ASSERTION
                        and "stack_redundancy" in record.detail):
                    detected = True
        assert detected

    def test_baseline_misses_what_redundancy_catches(self, baseline, hardened):
        """Count undetected stack-riding corruptions with and without the
        Section VI duplication — hardening must strictly reduce them."""

        def miss_rate(hv):
            hv.reset()
            act = sched_act()
            golden = capture_golden(hv, act)
            missed = manifested = 0
            for idx in range(golden.result.instructions):
                for bit in (9, 21, 33, 45):
                    record = run_trial(hv, act, FaultSpec("r10", bit, idx),
                                       golden=golden)
                    if record.manifested:
                        manifested += 1
                        if not record.detected:
                            missed += 1
            return missed / manifested

        assert miss_rate(hardened) < miss_rate(baseline)


class TestTimeVariationCheck:
    def test_variation_assertion_fires_on_time_corruption(self, hardened):
        """A flip in the first rdtsc read between the two reads produces an
        impossible variation."""
        hv = hardened
        hv.reset()
        act = timer_act()
        golden = capture_golden(hv, act)
        detected = False
        for idx in range(golden.result.instructions):
            record = run_trial(hv, act, FaultSpec("rbx", 30, idx), golden=golden)
            if (record.detected_by is DetectionTechnique.SW_ASSERTION
                    and "time_variation" in record.detail):
                detected = True
                break
        assert detected

    def test_hardening_reduces_undetected_time_faults(self, baseline, hardened):
        def undetected_time_faults(hv):
            hv.reset()
            act = timer_act()
            golden = capture_golden(hv, act)
            missed = 0
            for idx in range(golden.result.instructions):
                for bit in (12, 25, 38, 51):
                    for reg in ("rax", "rbx"):
                        record = run_trial(hv, act, FaultSpec(reg, bit, idx),
                                           golden=golden)
                        if (record.manifested and not record.detected
                                and record.undetected_kind is UndetectedKind.TIME_VALUES):
                            missed += 1
            return missed

        assert undetected_time_faults(hardened) < undetected_time_faults(baseline)
