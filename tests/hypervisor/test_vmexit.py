"""Exit-reason taxonomy: the Section IV inventory."""

import pytest

from repro.errors import MachineConfigError
from repro.hypervisor import (
    APIC_NAMES,
    EXCEPTION_NAMES,
    ExitCategory,
    HVM_EXIT_NAMES,
    HYPERCALL_NAMES,
    REGISTRY,
)


class TestInventory:
    def test_38_hypercalls(self):
        assert len(HYPERCALL_NAMES) == 38
        assert len(REGISTRY.in_category(ExitCategory.HYPERCALL)) == 38

    def test_19_exception_handlers(self):
        assert len(EXCEPTION_NAMES) == 19
        assert len(REGISTRY.in_category(ExitCategory.EXCEPTION)) == 19

    def test_10_apic_handlers(self):
        assert len(APIC_NAMES) == 10
        assert len(REGISTRY.in_category(ExitCategory.APIC)) == 10

    def test_softirq_and_tasklet(self):
        names = {r.name for r in REGISTRY.in_category(ExitCategory.SOFTIRQ)}
        assert names == {"do_softirq", "do_tasklet"}

    def test_one_do_irq_interface(self):
        assert [r.name for r in REGISTRY.in_category(ExitCategory.COMMON_IRQ)] == ["do_irq"]

    def test_total_reason_count(self):
        assert len(REGISTRY) == 38 + 19 + 10 + 1 + 2 + len(HVM_EXIT_NAMES)

    def test_known_xen_hypercalls_present(self):
        for name in ("mmu_update", "event_channel_op", "sched_op", "grant_table_op", "iret"):
            assert name in HYPERCALL_NAMES


class TestRegistry:
    def test_vmer_ids_are_dense_and_stable(self):
        for i, reason in enumerate(REGISTRY):
            assert reason.vmer == i
            assert REGISTRY.by_vmer(i) is reason

    def test_lookup_by_name(self):
        reason = REGISTRY.by_name("event_channel_op")
        assert reason.category is ExitCategory.HYPERCALL
        assert reason.handler_label == "handler.event_channel_op"

    def test_unknown_lookups_raise(self):
        with pytest.raises(MachineConfigError):
            REGISTRY.by_name("not_a_reason")
        with pytest.raises(MachineConfigError):
            REGISTRY.by_vmer(10_000)

    def test_pv_reasons_exclude_hvm(self):
        assert all(r.category is not ExitCategory.HVM for r in REGISTRY.pv_reasons)
        assert len(REGISTRY.pv_reasons) == 70

    def test_hvm_reasons_include_vmcs_and_hypercalls(self):
        cats = {r.category for r in REGISTRY.hvm_reasons}
        assert ExitCategory.HVM in cats and ExitCategory.HYPERCALL in cats
        assert ExitCategory.EXCEPTION not in cats  # PV-only trap path

    def test_arg_ranges_present_for_parameterized_reasons(self):
        assert REGISTRY.by_name("do_irq").arg_ranges == ((0, 31),)
        assert len(REGISTRY.by_name("mmu_update").arg_ranges) == 2
