"""Hypervisor data layout: allocation, tagging, initialization."""

import pytest

from repro.errors import MemoryConfigError
from repro.hypervisor import GLOBAL_OWNER, HypervisorLayout, MemoryMap, ValueKind
from repro.hypervisor.layout import DataAllocator, VCPU_MODE_RUNNING


def make_layout(n_domains=3, vcpus=1) -> HypervisorLayout:
    mm = MemoryMap()
    return HypervisorLayout(
        heap_base=mm.heap_base, heap_size=mm.heap_size,
        n_domains=n_domains, vcpus_per_domain=vcpus,
    )


class TestAllocator:
    def test_slots_are_disjoint_and_ordered(self):
        alloc = DataAllocator(0x1000, 0x1000)
        a = alloc.alloc("a", 4, GLOBAL_OWNER, ValueKind.CONTROL)
        b = alloc.alloc("b", 4, GLOBAL_OWNER, ValueKind.CONTROL)
        assert a.end == b.address

    def test_duplicate_name_rejected(self):
        alloc = DataAllocator(0x1000, 0x1000)
        alloc.alloc("x", 1, 0, ValueKind.SCRATCH)
        with pytest.raises(MemoryConfigError):
            alloc.alloc("x", 1, 0, ValueKind.SCRATCH)

    def test_exhaustion_rejected(self):
        alloc = DataAllocator(0x1000, 64)
        with pytest.raises(MemoryConfigError):
            alloc.alloc("big", 9, 0, ValueKind.SCRATCH)

    def test_word_address_bounds(self):
        alloc = DataAllocator(0x1000, 0x1000)
        slot = alloc.alloc("s", 4, 0, ValueKind.SCRATCH)
        assert slot.word_address(3) == slot.address + 24
        with pytest.raises(MemoryConfigError):
            slot.word_address(4)


class TestLayout:
    def test_every_slot_unique_and_inside_heap(self):
        layout = make_layout()
        mm = MemoryMap()
        seen: list[tuple[int, int]] = []
        for slot in layout.all_slots.values():
            assert mm.heap_base <= slot.address < slot.end <= mm.heap_base + mm.heap_size
            for lo, hi in seen:
                assert slot.end <= lo or slot.address >= hi  # disjoint
            seen.append((slot.address, slot.end))

    def test_domain_blocks_have_identical_strides(self):
        layout = make_layout(n_domains=4)
        d = layout.domains
        stride = d[1].info.address - d[0].info.address
        for i in range(2, 4):
            assert d[i].info.address - d[i - 1].info.address == stride
            assert (
                d[i].evtchn_pending.address - d[i].info.address
                == d[0].evtchn_pending.address - d[0].info.address
            )

    def test_ownership_tags(self):
        layout = make_layout()
        assert layout.runqueue.owner == GLOBAL_OWNER
        assert layout.domains[1].wallclock.owner == 1
        assert layout.domains[2].vcpus[0].regs.owner == 2

    def test_kind_tags_follow_paper_taxonomy(self):
        layout = make_layout()
        dom = layout.domains[1]
        assert dom.wallclock.kind is ValueKind.TIME
        assert dom.vcpus[0].time.kind is ValueKind.TIME
        assert dom.vcpus[0].regs.kind is ValueKind.APP_DATA
        assert dom.vcpus[0].pending.kind is ValueKind.VCPU_STATE
        assert layout.runqueue.kind is ValueKind.CONTROL
        assert dom.vcpus[0].stack_save.kind is ValueKind.POINTER

    def test_slot_at_lookup(self):
        layout = make_layout()
        slot = layout.slot_at(layout.runqueue.address + 8)
        assert slot is not None and slot.name == "runqueue"
        assert layout.slot_at(layout.heap_base + layout.heap_size - 8) is None

    def test_slot_by_name(self):
        layout = make_layout()
        assert layout.slot("dom1.wallclock") is layout.domains[1].wallclock
        with pytest.raises(MemoryConfigError):
            layout.slot("nonexistent")

    def test_needs_at_least_dom0(self):
        with pytest.raises(MemoryConfigError):
            make_layout(n_domains=0)
        with pytest.raises(MemoryConfigError):
            make_layout(vcpus=0)

    def test_initialize_writes_consistent_state(self):
        layout = make_layout()
        mm = MemoryMap()
        mem = mm.create_memory()
        layout.initialize(mem)
        for d, dom in enumerate(layout.domains):
            assert mem.read_u64(dom.info.word_address(0)) == d
            assert mem.read_u64(dom.info.word_address(1)) == 1  # live
            assert mem.read_u64(dom.vcpus[0].mode.address) == VCPU_MODE_RUNNING
        # IRQ descriptors wired, fixup chain terminated.
        assert mem.read_u64(layout.irq_descs.word_address(5)) == 0x105
        last = layout.fixup_table.words // 2 - 1
        assert mem.read_u64(layout.fixup_table.word_address(2 * last + 1)) == (1 << 64) - 1
