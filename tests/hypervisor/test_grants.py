"""Grant-table control plane: issuance, refcounting, transfer, copies."""

import pytest

from repro.errors import CampaignConfigError
from repro.hypervisor import XenHypervisor
from repro.hypervisor.grants import GrantFlags, GrantTableManager


@pytest.fixture()
def gt() -> GrantTableManager:
    return GrantTableManager(XenHypervisor(seed=83))


class TestIssuance:
    def test_refs_count_up_per_granter(self, gt):
        a = gt.grant_access(1, 2, frame=0x100, flags=GrantFlags.READ)
        b = gt.grant_access(1, 2, frame=0x101, flags=GrantFlags.READ)
        c = gt.grant_access(2, 1, frame=0x200, flags=GrantFlags.READ)
        assert (a.ref, b.ref, c.ref) == (0, 1, 0)

    def test_self_grant_rejected(self, gt):
        with pytest.raises(CampaignConfigError):
            gt.grant_access(1, 1, frame=1, flags=GrantFlags.READ)

    def test_flagless_grant_rejected(self, gt):
        with pytest.raises(CampaignConfigError):
            gt.grant_access(1, 2, frame=1, flags=GrantFlags.NONE)

    def test_unknown_domains_rejected(self, gt):
        with pytest.raises(CampaignConfigError):
            gt.grant_access(9, 1, frame=1, flags=GrantFlags.READ)


class TestMapUnmap:
    def test_map_refcounts(self, gt):
        entry = gt.grant_access(1, 2, frame=5, flags=GrantFlags.READ | GrantFlags.WRITE)
        gt.map_grant(2, 1, entry.ref)
        gt.map_grant(2, 1, entry.ref)
        assert entry.mappings == 2 and entry.busy
        gt.unmap_grant(2, 1, entry.ref)
        assert entry.mappings == 1

    def test_only_the_grantee_may_map(self, gt):
        entry = gt.grant_access(1, 2, frame=5, flags=GrantFlags.READ)
        with pytest.raises(CampaignConfigError):
            gt.map_grant(0, 1, entry.ref)

    def test_unmap_requires_mapping(self, gt):
        entry = gt.grant_access(1, 2, frame=5, flags=GrantFlags.READ)
        with pytest.raises(CampaignConfigError):
            gt.unmap_grant(2, 1, entry.ref)

    def test_revocation_refused_while_mapped(self, gt):
        """The classic grant-table hazard: ending access under a live map."""
        entry = gt.grant_access(1, 2, frame=5, flags=GrantFlags.READ)
        gt.map_grant(2, 1, entry.ref)
        with pytest.raises(CampaignConfigError, match="mapping"):
            gt.end_access(1, entry.ref)
        gt.unmap_grant(2, 1, entry.ref)
        gt.end_access(1, entry.ref)
        with pytest.raises(CampaignConfigError):
            gt.entry(1, entry.ref)


class TestTransfer:
    def test_transfer_requires_the_flag(self, gt):
        entry = gt.grant_access(1, 2, frame=5, flags=GrantFlags.READ)
        with pytest.raises(CampaignConfigError):
            gt.transfer(entry)

    def test_transfer_consumes_the_grant(self, gt):
        entry = gt.grant_access(1, 2, frame=5, flags=GrantFlags.TRANSFER)
        gt.transfer(entry)
        assert entry.transferred
        with pytest.raises(CampaignConfigError):
            gt.map_grant(2, 1, entry.ref)

    def test_mapped_frame_cannot_transfer(self, gt):
        entry = gt.grant_access(
            1, 2, frame=5, flags=GrantFlags.READ | GrantFlags.TRANSFER
        )
        gt.map_grant(2, 1, entry.ref)
        with pytest.raises(CampaignConfigError):
            gt.transfer(entry)


class TestCopies:
    def test_copy_lands_in_guest_visible_window(self, gt):
        entry = gt.grant_access(1, 2, frame=5, flags=GrantFlags.WRITE)
        before = gt.window_words(1)
        result = gt.copy_through(entry, words=12)
        after = gt.window_words(1)
        assert result.instructions > 20
        assert after != before  # payload observable to the guest side

    def test_copy_respects_batch_limits(self, gt):
        entry = gt.grant_access(1, 2, frame=5, flags=GrantFlags.WRITE)
        with pytest.raises(CampaignConfigError):
            gt.copy_through(entry, words=0)
        with pytest.raises(CampaignConfigError):
            gt.copy_through(entry, words=500)

    def test_transfer_only_grant_cannot_copy(self, gt):
        entry = gt.grant_access(1, 2, frame=5, flags=GrantFlags.TRANSFER)
        with pytest.raises(CampaignConfigError):
            gt.copy_through(entry, words=4)

    def test_grants_of_inventory(self, gt):
        gt.grant_access(1, 2, frame=1, flags=GrantFlags.READ)
        gt.grant_access(1, 0, frame=2, flags=GrantFlags.READ)
        assert len(gt.grants_of(1)) == 2
        assert gt.grants_of(2) == ()
