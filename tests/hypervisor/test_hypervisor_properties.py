"""Property-based tests over the hypervisor substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultSpec, capture_golden, run_trial
from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.machine.registers import INJECTABLE_REGISTERS

_HV = XenHypervisor(seed=99)

vmers = st.integers(min_value=0, max_value=len(REGISTRY) - 1)


@st.composite
def activations(draw):
    vmer = draw(vmers)
    reason = REGISTRY.by_vmer(vmer)
    args = tuple(
        draw(st.integers(min_value=lo, max_value=hi))
        for lo, hi in reason.arg_ranges
    )
    return Activation(
        vmer=vmer,
        args=args,
        domain_id=draw(st.integers(0, 2)),
        seq=draw(st.integers(0, 500)),
    )


class TestExecutionProperties:
    @settings(max_examples=60, deadline=None)
    @given(activation=activations())
    def test_any_legal_activation_executes_cleanly(self, activation):
        """Fault-free executions never raise for in-range arguments."""
        _HV.reset()
        result = _HV.execute(activation)
        assert result.instructions > 0
        assert result.sample.instructions == result.instructions

    @settings(max_examples=30, deadline=None)
    @given(activation=activations())
    def test_execution_is_deterministic(self, activation):
        _HV.reset()
        snap = _HV.checkpoint()
        first = _HV.execute(activation)
        _HV.restore(snap)
        second = _HV.execute(activation)
        assert first.path_hash == second.path_hash
        assert first.sample == second.sample

    @settings(max_examples=30, deadline=None)
    @given(activation=activations())
    def test_features_are_internally_consistent(self, activation):
        """RT bounds every other counter; VMER matches the request."""
        _HV.reset()
        result = _HV.execute(activation)
        vmer, rt, br, rm, wm = result.features
        assert vmer == activation.vmer
        assert br < rt and rm < rt and wm < rt


class TestInjectionProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        activation=activations(),
        register=st.sampled_from(INJECTABLE_REGISTERS),
        bit=st.integers(0, 63),
        data=st.data(),
    )
    def test_any_single_trial_completes_and_is_classified(
        self, activation, register, bit, data
    ):
        """run_trial never raises: every fault lands in the taxonomy."""
        _HV.reset()
        golden = capture_golden(_HV, activation)
        index = data.draw(
            st.integers(0, max(0, golden.result.instructions - 1))
        )
        record = run_trial(
            _HV, activation, FaultSpec(register, bit, index), golden=golden
        )
        assert record.failure_class is not None
        assert record.detected_by is not None
        if record.detected:
            assert record.detection_latency is not None and record.detection_latency >= 0
        if not record.manifested:
            assert record.undetected_kind is None

    @settings(max_examples=25, deadline=None)
    @given(activation=activations(), bit=st.integers(0, 63), data=st.data())
    def test_trials_are_repeatable(self, activation, bit, data):
        _HV.reset()
        golden = capture_golden(_HV, activation)
        index = data.draw(st.integers(0, max(0, golden.result.instructions - 1)))
        fault = FaultSpec("rbx", bit, index)
        assert run_trial(_HV, activation, fault, golden=golden) == run_trial(
            _HV, activation, fault, golden=golden
        )
