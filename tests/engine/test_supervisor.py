"""ShardSupervisor: retry, backoff, watchdog, pool recovery, quarantine.

The acceptance properties of the self-resilient engine live here:

* a seeded chaos campaign (worker crash + hang + journal fault injected)
  whose retries succeed completes with records **bit-identical** to the
  undisturbed run;
* when the retry budget is exhausted the campaign completes *degraded* with
  accurate ``ShardQuarantined`` telemetry, journalled failure markers, and
  every surviving shard's records intact;
* a resume heals a degraded or journal-crashed campaign back to the full
  bit-identical record sequence.

The CI chaos job re-runs this file under several ``REPRO_CHAOS_SEED``
values; every assertion must hold for any seed.
"""

import os
import time

import pytest

from repro.engine import (
    CampaignEngine,
    ChaosPolicy,
    DegradedCampaignResult,
    EngineTelemetry,
    RetryPolicy,
    ShardQuarantined,
    ShardRetried,
    WorkerCrashed,
    read_state,
)
from repro.errors import CampaignConfigError, JournalError
from repro.faults import CampaignConfig, FaultInjectionCampaign

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

CONFIG = CampaignConfig(benchmarks=("mcf",), n_injections=24, seed=9)
N_SHARDS = 3
#: Zero backoff keeps the suite fast; the schedule itself is tested below.
RETRY = RetryPolicy(max_retries=2, backoff_base=0.0, seed=CHAOS_SEED)


@pytest.fixture(scope="module")
def serial_records():
    return FaultInjectionCampaign(CONFIG).run().records


def shard_trials(serial_records, quarantined):
    """Expected surviving records when ``quarantined`` shards are lost."""
    from repro.engine import plan_campaign

    plan = plan_campaign(CONFIG, N_SHARDS)
    keep = []
    for shard in plan.shards:
        if shard.index in quarantined:
            continue
        start = shard.trial_start
        keep.extend(serial_records[start:start + shard.n_trials])
    return tuple(keep)


class TestRetryPolicy:
    def test_delay_is_deterministic_and_jittered(self):
        policy = RetryPolicy(
            backoff_base=1.0, backoff_factor=2.0, backoff_max=10.0,
            jitter=0.5, seed=CHAOS_SEED,
        )
        for shard in range(4):
            for attempt in range(1, 5):
                d = policy.delay(shard, attempt)
                assert d == policy.delay(shard, attempt)
                cap = min(10.0, 1.0 * 2.0 ** (attempt - 1))
                assert 0.5 * cap <= d <= cap

    def test_first_attempt_has_no_delay(self):
        assert RetryPolicy(seed=CHAOS_SEED).delay(0, 0) == 0.0

    def test_cap_bounds_growth(self):
        policy = RetryPolicy(
            backoff_base=1.0, backoff_factor=10.0, backoff_max=3.0,
            jitter=0.0, seed=CHAOS_SEED,
        )
        assert policy.delay(0, 6) == 3.0

    def test_validation(self):
        with pytest.raises(CampaignConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(CampaignConfigError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(CampaignConfigError):
            RetryPolicy(backoff_factor=0.5)


class TestTransientFaults:
    """Faults on the first attempt only: every retry succeeds."""

    def test_serial_crash_retry_is_bit_identical(self, serial_records):
        chaos = ChaosPolicy(seed=CHAOS_SEED, crash_rate=1.0, only_attempt=0)
        telemetry = EngineTelemetry()
        result = CampaignEngine(
            CONFIG, jobs=1, n_shards=N_SHARDS,
            retry=RETRY, chaos=chaos, telemetry=telemetry,
        ).run()
        assert not result.degraded
        assert result.records == serial_records
        assert telemetry.retries == N_SHARDS  # one retry per shard
        assert not telemetry.quarantined
        retried = [e for e in telemetry.failed_attempts if e.kind == "exception"]
        assert sorted(e.shard for e in retried) == list(range(N_SHARDS))

    def test_pool_hard_crash_recovers_broken_pool(self, serial_records):
        chaos = ChaosPolicy(
            seed=CHAOS_SEED, hard_crash_rate=1.0, only_attempt=0, shards=(0,)
        )
        telemetry = EngineTelemetry()
        events = []
        telemetry.subscribe(events.append)
        result = CampaignEngine(
            CONFIG, jobs=2, n_shards=N_SHARDS,
            retry=RETRY, chaos=chaos, telemetry=telemetry,
        ).run()
        assert result.records == serial_records
        crashes = [e for e in events if isinstance(e, WorkerCrashed)]
        assert crashes and all(e.kind == "broken_pool" for e in crashes)
        assert any(0 in e.shards for e in crashes)
        assert not telemetry.quarantined

    def test_pool_hang_reclaimed_by_watchdog(self, serial_records):
        chaos = ChaosPolicy(
            seed=CHAOS_SEED, hang_rate=1.0, only_attempt=0, shards=(1,),
            hang_seconds=60.0,
        )
        telemetry = EngineTelemetry()
        events = []
        telemetry.subscribe(events.append)
        t0 = time.monotonic()
        result = CampaignEngine(
            CONFIG, jobs=2, n_shards=N_SHARDS,
            retry=RETRY, chaos=chaos, telemetry=telemetry, shard_timeout=1.0,
        ).run()
        elapsed = time.monotonic() - t0
        assert result.records == serial_records
        assert elapsed < 30.0  # the watchdog, not the 60s hang, set the pace
        crashes = [e for e in events if isinstance(e, WorkerCrashed)]
        assert any(e.kind == "watchdog_timeout" and 1 in e.shards for e in crashes)
        timeouts = [e for e in telemetry.failed_attempts if e.kind == "timeout"]
        assert [e.shard for e in timeouts] == [1]

    def test_journal_fault_retried_and_tail_superseded(
        self, tmp_path, serial_records
    ):
        journal = tmp_path / "trials.jsonl"
        chaos = ChaosPolicy(
            seed=CHAOS_SEED, journal_truncate_rate=1.0, only_attempt=0
        )
        telemetry = EngineTelemetry()
        result = CampaignEngine(
            CONFIG, jobs=1, n_shards=N_SHARDS, journal_path=journal,
            retry=RETRY, chaos=chaos, telemetry=telemetry,
        ).run()
        assert result.records == serial_records
        state = read_state(journal)
        assert sorted(state.completed) == list(range(N_SHARDS))
        assert not state.partial  # torn tails superseded by the retried append
        assert telemetry.retries == N_SHARDS
        assert all(e.kind == "journal" for e in telemetry.failed_attempts)

    def test_combined_chaos_campaign_is_bit_identical(self, serial_records):
        """The headline acceptance: crash + hang + journal fault in one run."""
        chaos = ChaosPolicy(
            seed=CHAOS_SEED, crash_rate=0.5, hard_crash_rate=0.3,
            hang_rate=0.3, journal_truncate_rate=0.4,
            only_attempt=0, hang_seconds=60.0,
        )
        telemetry = EngineTelemetry()
        result = CampaignEngine(
            CONFIG, jobs=2, n_shards=N_SHARDS,
            retry=RetryPolicy(max_retries=3, backoff_base=0.0, seed=CHAOS_SEED),
            chaos=chaos, telemetry=telemetry, shard_timeout=1.5,
        ).run()
        assert not result.degraded
        assert result.records == serial_records
        assert not telemetry.quarantined


class TestQuarantine:
    """Persistent faults: the budget is exhausted, the campaign degrades."""

    def test_degraded_result_carries_survivors_and_reports(self, serial_records):
        chaos = ChaosPolicy(seed=CHAOS_SEED, crash_rate=1.0, shards=(1,))
        telemetry = EngineTelemetry()
        result = CampaignEngine(
            CONFIG, jobs=1, n_shards=N_SHARDS,
            retry=RETRY, chaos=chaos, telemetry=telemetry,
        ).run()
        assert isinstance(result, DegradedCampaignResult)
        assert result.degraded
        assert result.quarantined_shards == (1,)
        # Survivors are bit-identical to the serial run at their positions.
        assert result.records == shard_trials(serial_records, {1})
        assert result.missing_trials == len(serial_records) - len(result.records)
        assert "1/3 shards quarantined" in result.summary()
        failure = result.failures[0]
        assert failure.shard == 1
        assert len(failure.attempts) == RETRY.max_attempts
        assert failure.last.kind == "exception"

    def test_quarantine_telemetry_and_manifest_are_accurate(self, serial_records):
        chaos = ChaosPolicy(seed=CHAOS_SEED, crash_rate=1.0, shards=(0, 2))
        telemetry = EngineTelemetry()
        result = CampaignEngine(
            CONFIG, jobs=1, n_shards=N_SHARDS,
            retry=RETRY, chaos=chaos, telemetry=telemetry,
        ).run()
        assert result.quarantined_shards == (0, 2)
        quarantined = {e.shard: e for e in telemetry.quarantined}
        assert sorted(quarantined) == [0, 2]
        assert all(e.attempts == RETRY.max_attempts for e in quarantined.values())
        manifest = telemetry.manifest()
        assert [q["shard"] for q in manifest["failures"]["quarantined"]] == [0, 2]
        assert manifest["failures"]["retries"] == 2 * (RETRY.max_attempts - 1)

    def test_pool_quarantine_keeps_other_shards_journalled(
        self, tmp_path, serial_records
    ):
        """The lost-shard fix: batch-mates of a failing shard stay durable."""
        journal = tmp_path / "trials.jsonl"
        chaos = ChaosPolicy(seed=CHAOS_SEED, crash_rate=1.0, shards=(2,))
        result = CampaignEngine(
            CONFIG, jobs=2, n_shards=N_SHARDS, journal_path=journal,
            retry=RETRY, chaos=chaos,
        ).run()
        assert result.degraded and result.quarantined_shards == (2,)
        state = read_state(journal)
        assert sorted(state.completed) == [0, 1]
        assert sorted(state.failed) == [2]
        assert state.failed[2]["attempts"] == RETRY.max_attempts

    def test_resume_heals_a_degraded_campaign(self, tmp_path, serial_records):
        journal = tmp_path / "trials.jsonl"
        chaos = ChaosPolicy(seed=CHAOS_SEED, crash_rate=1.0, shards=(1,))
        degraded = CampaignEngine(
            CONFIG, jobs=1, n_shards=N_SHARDS, journal_path=journal,
            retry=RETRY, chaos=chaos,
        ).run()
        assert degraded.degraded
        healed = CampaignEngine(
            CONFIG, jobs=1, n_shards=N_SHARDS, journal_path=journal,
        ).run(resume=True)
        assert not healed.degraded
        assert healed.records == serial_records
        state = read_state(journal)
        assert sorted(state.completed) == list(range(N_SHARDS))
        assert not state.failed

    def test_quarantined_event_emitted_with_final_error(self):
        chaos = ChaosPolicy(seed=CHAOS_SEED, crash_rate=1.0, shards=(0,))
        telemetry = EngineTelemetry()
        events = []
        telemetry.subscribe(events.append)
        CampaignEngine(
            CONFIG, jobs=1, n_shards=N_SHARDS,
            retry=RETRY, chaos=chaos, telemetry=telemetry,
        ).run()
        quarantined = [e for e in events if isinstance(e, ShardQuarantined)]
        assert len(quarantined) == 1
        assert quarantined[0].shard == 0
        assert "ChaosInjected" in quarantined[0].error
        retried = [e for e in events if isinstance(e, ShardRetried)]
        assert [e.attempt for e in retried] == [1, 2]


class TestJournalFatality:
    def test_unwritable_journal_aborts_leaving_partial_tail(
        self, tmp_path, serial_records
    ):
        """Kill mid-append (via chaos): the tail is partial, resume re-runs
        the shard to a bit-identical merged result."""
        journal = tmp_path / "trials.jsonl"
        chaos = ChaosPolicy(seed=CHAOS_SEED, journal_truncate_rate=1.0)
        with pytest.raises(JournalError, match="journal append"):
            CampaignEngine(
                CONFIG, jobs=1, n_shards=N_SHARDS, journal_path=journal,
                retry=RetryPolicy(max_retries=1, backoff_base=0.0, seed=CHAOS_SEED),
                chaos=chaos,
            ).run()
        state = read_state(journal)
        assert not state.completed
        assert 0 in state.partial  # the torn shard is visible, not corrupt
        # The manifest snapshot survived the failed run (written in finally).
        assert (tmp_path / "trials.jsonl.manifest.json").exists()
        healed = CampaignEngine(
            CONFIG, jobs=1, n_shards=N_SHARDS, journal_path=journal,
        ).run(resume=True)
        assert healed.records == serial_records

    def test_manifest_written_when_resumed_run_fails_early(
        self, tmp_path, serial_records
    ):
        """A subscriber exploding on the resumed-shard replay must still
        leave a manifest next to the journal."""
        journal = tmp_path / "trials.jsonl"
        CampaignEngine(CONFIG, jobs=1, n_shards=N_SHARDS, journal_path=journal).run()
        manifest = tmp_path / "trials.jsonl.manifest.json"
        manifest.unlink()
        telemetry = EngineTelemetry()

        def explode(event):
            raise KeyboardInterrupt

        telemetry.subscribe(explode)
        with pytest.raises(KeyboardInterrupt):
            CampaignEngine(
                CONFIG, jobs=1, n_shards=N_SHARDS, journal_path=journal,
                telemetry=telemetry,
            ).run(resume=True)
        assert manifest.exists()
