"""Campaign execution engine tests."""
