"""CampaignEngine: sharded determinism, kill-and-resume, merge integrity.

The two acceptance properties of the engine subsystem live here:

* a sharded run (any shard count, serial or pooled) merges to a record
  sequence **bit-identical** to ``FaultInjectionCampaign.run`` with the same
  root seed;
* a campaign killed mid-flight and resumed from its journal completes with
  no duplicated and no missing trial records.
"""

import pytest

from repro.analysis import journal_progress, records_from_journal
from repro.engine import (
    CampaignEngine,
    EngineTelemetry,
    ShardFinished,
    read_state,
)
from repro.errors import EngineError, JournalError
from repro.faults import CampaignConfig, FaultInjectionCampaign

CONFIG = CampaignConfig(benchmarks=("mcf", "postmark"), n_injections=64, seed=9)


@pytest.fixture(scope="module")
def serial_records():
    return FaultInjectionCampaign(CONFIG).run().records


class KillAfter:
    """Telemetry subscriber that kills the campaign after N finished shards."""

    def __init__(self, n_shards: int):
        self.remaining = n_shards

    def __call__(self, event):
        if isinstance(event, ShardFinished) and not event.resumed:
            self.remaining -= 1
            if self.remaining == 0:
                raise KeyboardInterrupt


class TestDeterminism:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_sharded_run_is_bit_identical_to_serial(self, n_shards, serial_records):
        result = CampaignEngine(CONFIG, jobs=1, n_shards=n_shards).run()
        assert result.records == serial_records

    def test_process_pool_run_is_bit_identical_to_serial(self, serial_records):
        result = CampaignEngine(CONFIG, jobs=2, n_shards=4).run()
        assert result.records == serial_records

    def test_detector_survives_pickling_into_workers(self, serial_records):
        from tests.ml.test_trees import separable_dataset
        from repro.ml import DecisionTreeClassifier
        from repro.xentry import VMTransitionDetector

        detector = VMTransitionDetector.from_classifier(
            DecisionTreeClassifier().fit(separable_dataset(200, seed=2))
        )
        pooled = CampaignEngine(CONFIG, jobs=2, n_shards=4, detector=detector).run()
        detector2 = VMTransitionDetector(rules=detector.rules)
        serial = FaultInjectionCampaign(CONFIG, detector=detector2).run()
        assert pooled.records == serial.records


class TestResume:
    def test_killed_campaign_resumes_without_dup_or_loss(
        self, tmp_path, serial_records
    ):
        journal = tmp_path / "trials.jsonl"
        telemetry = EngineTelemetry()
        telemetry.subscribe(KillAfter(2))
        with pytest.raises(KeyboardInterrupt):
            CampaignEngine(
                CONFIG, jobs=1, n_shards=4, journal_path=journal, telemetry=telemetry
            ).run()
        state = read_state(journal)
        assert len(state.completed_shards) == 2
        assert 0 < state.completed_trials < len(serial_records)

        result = CampaignEngine(CONFIG, jobs=1, n_shards=4, journal_path=journal).run(
            resume=True
        )
        assert result.records == serial_records  # nothing missing...
        final = read_state(journal)
        seen = [t for trials in final.completed.values() for t, _ in trials]
        assert sorted(seen) == list(range(len(serial_records)))  # ...nothing doubled

    def test_resume_skips_completed_work(self, tmp_path, serial_records):
        journal = tmp_path / "trials.jsonl"
        CampaignEngine(CONFIG, jobs=1, n_shards=4, journal_path=journal).run()
        telemetry = EngineTelemetry()
        result = CampaignEngine(
            CONFIG, jobs=1, n_shards=4, journal_path=journal, telemetry=telemetry
        ).run(resume=True)
        assert result.records == serial_records
        assert telemetry.executed_trials == 0
        assert all(event.resumed for event in telemetry.shard_log)

    def test_resume_adopts_journal_shard_structure(self, tmp_path, serial_records):
        journal = tmp_path / "trials.jsonl"
        telemetry = EngineTelemetry()
        telemetry.subscribe(KillAfter(1))
        with pytest.raises(KeyboardInterrupt):
            CampaignEngine(
                CONFIG, jobs=1, n_shards=4, journal_path=journal, telemetry=telemetry
            ).run()
        # Resume with a different jobs/shard request: journal's 4 shards win.
        result = CampaignEngine(
            CONFIG, jobs=2, n_shards=2, journal_path=journal
        ).run(resume=True)
        assert result.records == serial_records
        assert read_state(journal).n_shards == 4

    def test_journal_collision_requires_resume(self, tmp_path):
        journal = tmp_path / "trials.jsonl"
        CampaignEngine(CONFIG, jobs=1, n_shards=2, journal_path=journal).run()
        with pytest.raises(JournalError, match="resume"):
            CampaignEngine(CONFIG, jobs=1, n_shards=2, journal_path=journal).run()

    def test_resume_rejects_foreign_journal(self, tmp_path):
        journal = tmp_path / "trials.jsonl"
        CampaignEngine(CONFIG, jobs=1, n_shards=2, journal_path=journal).run()
        other = CampaignConfig(benchmarks=("mcf", "postmark"), n_injections=64, seed=10)
        with pytest.raises(JournalError, match="different campaign"):
            CampaignEngine(other, jobs=1, n_shards=2, journal_path=journal).run(
                resume=True
            )

    def test_resume_without_journal_path(self):
        with pytest.raises(EngineError, match="journal_path"):
            CampaignEngine(CONFIG).run(resume=True)


class TestObservability:
    def test_manifest_written_next_to_journal(self, tmp_path):
        journal = tmp_path / "trials.jsonl"
        engine = CampaignEngine(CONFIG, jobs=1, n_shards=2, journal_path=journal)
        engine.run()
        manifest_path = tmp_path / "trials.jsonl.manifest.json"
        assert manifest_path.exists()
        manifest = engine.telemetry.manifest()
        assert manifest["done_shards"] == 2
        assert manifest["done_trials"] == manifest["total_trials"]
        assert sum(manifest["outcomes"]["detected_by"].values()) == len(
            FaultInjectionCampaign(CONFIG).run()
        )

    def test_analysis_reads_the_journal(self, tmp_path, serial_records):
        journal = tmp_path / "trials.jsonl"
        CampaignEngine(CONFIG, jobs=1, n_shards=4, journal_path=journal).run()
        assert records_from_journal(journal) == serial_records
        progress = journal_progress(journal)
        assert progress["fraction_done"] == 1.0
        assert progress["completed_shards"] == [0, 1, 2, 3]
