"""Telemetry: counters, throughput, ETA, progress line, manifest."""

import io
import json

from repro.engine import (
    CampaignFinished,
    CampaignStarted,
    EngineTelemetry,
    ShardFailed,
    ShardFinished,
    ShardQuarantined,
    ShardRetried,
    ShardStarted,
    WorkerCrashed,
    stderr_progress,
)
from repro.faults import CampaignConfig, FaultInjectionCampaign


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def drive(telemetry, clock):
    telemetry.emit(CampaignStarted(total_trials=100, n_shards=4, jobs=2))
    telemetry.emit(ShardStarted(shard=0, n_trials=25))
    clock.now += 5.0
    telemetry.emit(ShardFinished(shard=0, n_trials=25, elapsed=5.0))


class TestAggregation:
    def test_throughput_and_eta(self):
        clock = FakeClock()
        t = EngineTelemetry(clock=clock)
        drive(t, clock)
        snap = t.snapshot()
        assert snap.done_trials == 25 and snap.total_trials == 100
        assert snap.trials_per_sec == 25 / 5.0
        assert snap.eta_seconds == 75 / 5.0
        assert "25/100 trials" in snap.line()

    def test_resumed_shards_do_not_inflate_throughput(self):
        clock = FakeClock()
        t = EngineTelemetry(clock=clock)
        t.emit(CampaignStarted(total_trials=100, n_shards=4, jobs=1, resumed_shards=2))
        t.emit(ShardFinished(shard=0, n_trials=50, elapsed=0.0, resumed=True))
        clock.now += 10.0
        t.emit(ShardFinished(shard=1, n_trials=25, elapsed=10.0))
        snap = t.snapshot()
        assert snap.done_trials == 75
        assert t.executed_trials == 25
        assert snap.trials_per_sec == 2.5
        assert snap.eta_seconds == 25 / 2.5

    def test_outcome_counters(self):
        cfg = CampaignConfig(benchmarks=("mcf",), n_injections=20, seed=6)
        records = FaultInjectionCampaign(cfg).run().records
        t = EngineTelemetry()
        t.record_outcomes(records)
        assert sum(t.detected_by.values()) == 20
        assert sum(t.failure_class.values()) == 20

    def test_subscribers_see_every_event(self):
        clock = FakeClock()
        t = EngineTelemetry(clock=clock)
        seen = []
        t.subscribe(seen.append)
        drive(t, clock)
        assert [type(e).__name__ for e in seen] == [
            "CampaignStarted", "ShardStarted", "ShardFinished",
        ]


class TestFailureAccounting:
    def drive_failures(self, t):
        t.emit(CampaignStarted(total_trials=100, n_shards=4, jobs=2))
        t.emit(ShardFailed(shard=1, attempt=0, kind="exception", error="boom"))
        t.emit(ShardRetried(shard=1, attempt=1, delay=0.1, kind="exception"))
        t.emit(WorkerCrashed(shards=(2, 3), kind="broken_pool"))
        t.emit(ShardFailed(shard=2, attempt=0, kind="worker_lost", error="lost"))
        t.emit(ShardQuarantined(shard=2, attempts=3, kind="worker_lost",
                                error="lost"))

    def test_events_fold_into_counters(self):
        t = EngineTelemetry(clock=FakeClock())
        self.drive_failures(t)
        assert t.retries == 1
        assert t.worker_crashes == 1
        assert [e.shard for e in t.failed_attempts] == [1, 2]
        assert [e.shard for e in t.quarantined] == [2]

    def test_manifest_failures_section(self, tmp_path):
        t = EngineTelemetry(clock=FakeClock())
        self.drive_failures(t)
        path = tmp_path / "manifest.json"
        t.write_manifest(path)
        failures = json.loads(path.read_text())["failures"]
        assert failures["retries"] == 1
        assert failures["worker_crashes"] == 1
        assert failures["failed_attempts"] == [
            {"shard": 1, "attempt": 0, "kind": "exception", "error": "boom"},
            {"shard": 2, "attempt": 0, "kind": "worker_lost", "error": "lost"},
        ]
        assert failures["quarantined"] == [
            {"shard": 2, "attempts": 3, "kind": "worker_lost", "error": "lost"},
        ]

    def test_progress_line_narrates_failures(self):
        t = EngineTelemetry(clock=FakeClock())
        out = io.StringIO()
        t.subscribe(stderr_progress(t, stream=out))
        self.drive_failures(t)
        t.emit(CampaignFinished(total_trials=100, executed_trials=75,
                                elapsed=5.0, trials_per_sec=15.0,
                                quarantined=1))
        text = out.getvalue()
        assert "shard 1 retry (attempt 1" in text
        assert "worker crash" in text
        assert "shard 2 QUARANTINED after 3 attempts" in text
        assert "1 shards quarantined" in text


class TestManifest:
    def test_manifest_shape(self, tmp_path):
        clock = FakeClock()
        t = EngineTelemetry(clock=clock)
        drive(t, clock)
        path = tmp_path / "manifest.json"
        t.write_manifest(path)
        manifest = json.loads(path.read_text())
        assert manifest["format"] == "xentry-manifest-v1"
        assert manifest["total_trials"] == 100
        assert manifest["done_trials"] == 25
        assert manifest["jobs"] == 2
        assert manifest["shards"] == [
            {"shard": 0, "n_trials": 25, "elapsed_seconds": 5.0, "resumed": False}
        ]


class TestProgressLine:
    def test_stderr_progress_writes_and_finishes(self):
        clock = FakeClock()
        t = EngineTelemetry(clock=clock)
        out = io.StringIO()
        t.subscribe(stderr_progress(t, stream=out))
        drive(t, clock)
        t.emit(CampaignFinished(total_trials=100, executed_trials=25,
                                elapsed=5.0, trials_per_sec=5.0))
        text = out.getvalue()
        assert "\r" in text
        assert "25/100 trials" in text
        assert text.endswith("(5.0 trials/s)\n")
