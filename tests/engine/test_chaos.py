"""ChaosPolicy: deterministic draws, filters, spec parsing, tripwire.

The chaos harness is only useful if it is *reproducible*: every decision
must be a pure function of ``(seed, kind, shard, attempt)``.  The CI chaos
job re-runs this file under several ``REPRO_CHAOS_SEED`` values; assertions
hold for any seed.
"""

import os

import pytest

from repro.engine.chaos import (
    ChaosPolicy,
    ChaosTripwire,
    ShardChaos,
    inject_journal_fault,
    parse_chaos_spec,
)
from repro.errors import CampaignConfigError, ChaosInjected

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


class TestDeterminism:
    def test_plan_is_pure_in_seed_shard_attempt(self):
        policy = ChaosPolicy(seed=CHAOS_SEED, crash_rate=0.5, hang_rate=0.5)
        for shard in range(6):
            for attempt in range(3):
                assert policy.plan(shard, attempt) == policy.plan(shard, attempt)
                assert policy.journal_fault(shard, attempt) == policy.journal_fault(
                    shard, attempt
                )

    def test_zero_rates_are_always_quiet(self):
        policy = ChaosPolicy(seed=CHAOS_SEED)
        for shard in range(8):
            assert policy.plan(shard, 0).quiet
            assert policy.journal_fault(shard, 0) is None

    def test_rate_one_always_fires(self):
        policy = ChaosPolicy(seed=CHAOS_SEED, crash_rate=1.0)
        for shard in range(8):
            for attempt in range(3):
                plan = policy.plan(shard, attempt)
                assert plan.crash_after is not None
                assert not plan.hard

    def test_fraction_of_draws_fires_at_intermediate_rate(self):
        policy = ChaosPolicy(seed=CHAOS_SEED, crash_rate=0.5)
        fired = sum(
            not policy.plan(shard, attempt).quiet
            for shard in range(40)
            for attempt in range(5)
        )
        assert 0 < fired < 200  # neither never nor always

    def test_shm_lost_is_pure_and_independent(self):
        # Pure in (seed, kind, shard, attempt), and drawn from its own
        # named stream so enabling it never disturbs the other kinds.
        policy = ChaosPolicy(seed=CHAOS_SEED, shm_lost_rate=1.0)
        baseline = ChaosPolicy(seed=CHAOS_SEED, crash_rate=0.5)
        combined = ChaosPolicy(seed=CHAOS_SEED, crash_rate=0.5, shm_lost_rate=1.0)
        for shard in range(6):
            for attempt in range(3):
                plan = policy.plan(shard, attempt)
                assert plan == policy.plan(shard, attempt)
                assert plan.shm_lost_after is not None
                assert plan.crash_after is None
                assert (
                    combined.plan(shard, attempt).crash_after
                    == baseline.plan(shard, attempt).crash_after
                )


class TestFilters:
    def test_shards_filter_restricts_injection(self):
        policy = ChaosPolicy(seed=CHAOS_SEED, crash_rate=1.0, shards=(2,))
        assert policy.plan(2, 0).crash_after is not None
        assert policy.plan(0, 0).quiet
        assert policy.plan(3, 0).quiet

    def test_only_attempt_makes_faults_transient(self):
        policy = ChaosPolicy(seed=CHAOS_SEED, crash_rate=1.0, only_attempt=0)
        assert policy.plan(1, 0).crash_after is not None
        assert policy.plan(1, 1).quiet
        assert policy.plan(1, 2).quiet

    def test_hard_crash_degrades_to_soft_when_disallowed(self):
        policy = ChaosPolicy(seed=CHAOS_SEED, hard_crash_rate=1.0)
        assert policy.plan(0, 0, allow_hard=True).hard
        degraded = policy.plan(0, 0, allow_hard=False)
        assert degraded.crash_after is not None and not degraded.hard

    def test_truncate_takes_precedence_over_error(self):
        policy = ChaosPolicy(
            seed=CHAOS_SEED, journal_error_rate=1.0, journal_truncate_rate=1.0
        )
        assert policy.journal_fault(0, 0) == "truncate"
        assert ChaosPolicy(
            seed=CHAOS_SEED, journal_error_rate=1.0
        ).journal_fault(0, 0) == "error"


class TestValidation:
    @pytest.mark.parametrize("field", [
        "crash_rate", "hard_crash_rate", "hang_rate",
        "journal_error_rate", "journal_truncate_rate", "shm_lost_rate",
    ])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(CampaignConfigError, match="must be in"):
            ChaosPolicy(**{field: 1.5})

    def test_negative_hang_rejected(self):
        with pytest.raises(CampaignConfigError, match="hang_seconds"):
            ChaosPolicy(hang_seconds=-1.0)


class TestTripwire:
    def test_crash_fires_at_planned_record_count(self):
        trip = ChaosTripwire(ShardChaos(crash_after=2))
        trip.step()  # shard start: 0 records
        trip.step()  # record 1
        with pytest.raises(ChaosInjected, match="after 2 records"):
            trip.step()  # record 2

    def test_crash_before_first_record(self):
        trip = ChaosTripwire(ShardChaos(crash_after=0))
        with pytest.raises(ChaosInjected):
            trip.step()

    def test_quiet_plan_never_fires(self):
        trip = ChaosTripwire(ShardChaos())
        for _ in range(20):
            trip.step()

    def test_shm_lost_fires_callback_exactly_once(self):
        fired = []
        trip = ChaosTripwire(ShardChaos(shm_lost_after=1))
        trip.arm_shm(lambda: fired.append(trip.records))
        for _ in range(5):
            trip.step()
        assert fired == [1]

    def test_shm_lost_unarmed_is_noop(self):
        # No shared segment / cache disabled: the planned loss has nothing
        # to lose, and stepping through it must not raise.
        trip = ChaosTripwire(ShardChaos(shm_lost_after=0))
        for _ in range(5):
            trip.step()


class TestJournalFaultInjection:
    def test_error_raises_without_writing(self, tmp_path):
        class NoWrite:
            def append_torn(self, *a, **k):
                raise AssertionError("error fault must not write")

        with pytest.raises(OSError, match="journal write failed"):
            inject_journal_fault(NoWrite(), 0, [(0, object())], "error")

    def test_truncate_writes_torn_tail_then_raises(self):
        calls = []

        class Recorder:
            def append_torn(self, shard, trials):
                calls.append((shard, len(trials)))

        trials = [(i, object()) for i in range(8)]
        with pytest.raises(OSError, match="torn"):
            inject_journal_fault(Recorder(), 3, trials, "truncate")
        assert calls == [(3, 4)]  # half the batch, begin marker included


class TestSpecParsing:
    def test_bare_float_is_crash_rate(self):
        assert parse_chaos_spec("0.25") == ChaosPolicy(crash_rate=0.25)

    def test_full_spec(self):
        policy = parse_chaos_spec(
            "crash=0.2,hard=0.05,hang=0.1,journal=0.04,truncate=0.03,"
            "shm=0.5,seed=7,hang-seconds=12"
        )
        assert policy == ChaosPolicy(
            crash_rate=0.2, hard_crash_rate=0.05, hang_rate=0.1,
            journal_error_rate=0.04, journal_truncate_rate=0.03,
            shm_lost_rate=0.5, seed=7, hang_seconds=12.0,
        )

    def test_unknown_key_rejected(self):
        with pytest.raises(CampaignConfigError, match="bad --chaos field"):
            parse_chaos_spec("explode=1.0")

    def test_bad_value_rejected(self):
        with pytest.raises(CampaignConfigError, match="bad --chaos value"):
            parse_chaos_spec("crash=lots")

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(CampaignConfigError, match="must be in"):
            parse_chaos_spec("2.5")
