"""Shard planning: exact coverage, contiguity, and campaign identity."""

import pytest

from repro.engine import plan_campaign
from repro.engine.planner import config_digest
from repro.errors import CampaignConfigError
from repro.faults import CampaignConfig, FaultModel
from repro.faults.campaign import benchmark_geometry


def small_config(**kw):
    defaults = dict(benchmarks=("mcf", "postmark"), n_injections=60, seed=9)
    defaults.update(kw)
    return CampaignConfig(**defaults)


class TestPlan:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 7])
    def test_shards_cover_all_trials_exactly_once(self, n_shards):
        cfg = small_config()
        plan = plan_campaign(cfg, n_shards)
        geo = benchmark_geometry(cfg)
        expected_total = geo.per_benchmark * len(cfg.benchmarks)
        assert plan.total_trials == expected_total
        covered = []
        for shard in plan.shards:
            for s in shard.slices:
                covered.extend(range(s.trial_start, s.trial_start + s.n_trials))
        assert sorted(covered) == list(range(expected_total))
        assert covered == sorted(covered)  # serial order across shards

    def test_slice_trial_counts_match_geometry(self):
        cfg = small_config(n_injections=50)  # 25/benchmark, last group short
        geo = benchmark_geometry(cfg)
        plan = plan_campaign(cfg, 3)
        for shard in plan.shards:
            for s in shard.slices:
                assert s.n_trials == sum(
                    geo.group_trials(g) for g in range(s.group_start, s.group_stop)
                )

    def test_one_shard_is_whole_campaign(self):
        cfg = small_config()
        plan = plan_campaign(cfg, 1)
        assert plan.n_shards == 1
        assert plan.shards[0].n_trials == plan.total_trials
        # One slice per benchmark, spanning all its groups.
        geo = benchmark_geometry(cfg)
        assert [
            (s.benchmark, s.group_start, s.group_stop)
            for s in plan.shards[0].slices
        ] == [(b, 0, geo.n_goldens) for b in cfg.benchmarks]

    def test_shard_count_clamped_to_golden_groups(self):
        cfg = small_config(n_injections=8, injections_per_golden=4)
        plan = plan_campaign(cfg, 64)
        geo = benchmark_geometry(cfg)
        assert plan.n_shards == geo.n_goldens * len(cfg.benchmarks)
        assert all(s.n_trials > 0 for s in plan.shards)

    def test_balanced_within_one_group(self):
        cfg = small_config(n_injections=240)
        plan = plan_campaign(cfg, 4)
        sizes = [s.n_trials for s in plan.shards]
        assert max(sizes) - min(sizes) <= cfg.injections_per_golden

    def test_invalid_shard_count(self):
        with pytest.raises(CampaignConfigError):
            plan_campaign(small_config(), 0)


class TestDigest:
    def test_digest_is_stable(self):
        assert config_digest(small_config()) == config_digest(small_config())

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 10},
            {"n_injections": 61},
            {"benchmarks": ("mcf",)},
            {"injections_per_golden": 5},
            {"followup_activations": 2},
            {"fault_model": FaultModel(registers=("rip",))},
        ],
    )
    def test_digest_tracks_trial_shaping_fields(self, change):
        assert config_digest(small_config()) != config_digest(small_config(**change))

    def test_digest_independent_of_shard_count(self):
        cfg = small_config()
        assert plan_campaign(cfg, 2).digest == plan_campaign(cfg, 5).digest
