"""Pool-worker pre-warming: the translation cache is hot before trial one.

``warm_worker`` is the process-pool initializer: it pushes every exit
reason of the campaign's program image past the compile-warmth gate so
shards attach to already-compiled translations, and credits those
compiles to the manifest's warm share.  These tests pin the accounting
(warm vs cold split, monotone counters), the no-op under
``--no-translate``, and the supervisor plumbing that attaches the
initializer to every pool it builds.
"""

import dataclasses

import pytest

from repro.engine.planner import plan_campaign
from repro.engine.pool import CampaignEngine, store_fully_warm, warm_worker
from repro.engine.supervisor import ShardSupervisor
from repro.engine.telemetry import EngineTelemetry
from repro.faults import CampaignConfig, FaultInjectionCampaign
from repro.machine.translator import CACHE


@pytest.fixture()
def fresh_cache():
    """Run against an emptied process-wide cache, restoring it afterwards."""
    saved = (
        dict(CACHE._programs), CACHE.hits, CACHE.misses,
        CACHE.translated_instructions, CACHE.interpreted_instructions,
        CACHE.block_executions, CACHE.blocks_prewarmed,
    )
    CACHE._programs.clear()
    CACHE.hits = CACHE.misses = 0
    CACHE.translated_instructions = 0
    CACHE.interpreted_instructions = 0
    CACHE.block_executions = 0
    CACHE.blocks_prewarmed = 0
    try:
        yield CACHE
    finally:
        (CACHE._programs, CACHE.hits, CACHE.misses,
         CACHE.translated_instructions, CACHE.interpreted_instructions,
         CACHE.block_executions, CACHE.blocks_prewarmed) = (
            dict(saved[0]), *saved[1:],
        )


class TestWarmWorker:
    CONFIG = CampaignConfig(n_injections=40, seed=9)

    def test_warms_every_compile_as_prewarmed(self, fresh_cache):
        warm_worker(self.CONFIG)
        stats = fresh_cache.stats()
        assert stats["blocks_compiled"] > 0
        assert stats["blocks_prewarmed"] == stats["blocks_compiled"]
        assert stats["blocks_compiled_cold"] == 0

    def test_noop_without_translation(self, fresh_cache):
        warm_worker(CampaignConfig(n_injections=40, seed=9, translate=False))
        assert fresh_cache.stats()["blocks_compiled"] == 0

    def test_mid_process_warm_credits_only_its_own_compiles(self, fresh_cache):
        # Compile some blocks "cold" first (detector training, say), then
        # warm: the warm share must not absorb the earlier compiles.
        FaultInjectionCampaign(self.CONFIG).run()
        cold_before = fresh_cache.stats()["blocks_compiled"]
        assert cold_before > 0
        warm_worker(self.CONFIG)
        stats = fresh_cache.stats()
        assert stats["blocks_prewarmed"] == stats["blocks_compiled"] - cold_before
        assert stats["blocks_compiled_cold"] == cold_before

    def test_records_invariant_under_warming(self, fresh_cache):
        reference = FaultInjectionCampaign(self.CONFIG).run().records
        warm_worker(self.CONFIG)
        assert FaultInjectionCampaign(self.CONFIG).run().records == reference


class TestSupervisorPlumbing:
    CONFIG = CampaignConfig(n_injections=40, seed=9)

    def _supervisor(self, warm):
        return ShardSupervisor(
            self.CONFIG, execute=lambda *a, **k: [], jobs=2, warm=warm,
        )

    def test_pool_carries_the_initializer(self):
        sup = self._supervisor(warm_worker)
        pool = sup._make_pool(1)
        try:
            assert pool._initializer is warm_worker
            assert pool._initargs == (self.CONFIG,)
        finally:
            pool.shutdown(wait=False)

    def test_pool_without_warm_has_no_initializer(self):
        sup = self._supervisor(None)
        pool = sup._make_pool(1)
        try:
            assert pool._initializer is None
        finally:
            pool.shutdown(wait=False)

    def test_inline_engine_warms_this_process(self, fresh_cache):
        engine = CampaignEngine(self.CONFIG, jobs=1)
        result = engine.run()
        # Campaign geometry rounds trials per benchmark; the exact count
        # is pinned elsewhere — here only that the run produced records.
        assert len(result) > 0
        stats = fresh_cache.stats()
        assert stats["blocks_prewarmed"] > 0


class TestWarmStoreRetiresPrewarm:
    """A fully-warm artifact store makes the initializer pointless.

    The pre-warm amortizes first-*capture* translation latency; when every
    pending golden group is already cached there is no capture left to
    amortize, so the engine drops the initializer (and the inline warm) and
    notes the decision in the manifest's cache section.
    """

    CONFIG = CampaignConfig(n_injections=40, seed=9)

    def _warm_store(self, tmp_path):
        config = dataclasses.replace(self.CONFIG, artifacts=str(tmp_path / "c"))
        FaultInjectionCampaign(config).run()
        return config

    def test_store_fully_warm_decision(self, tmp_path):
        cold = dataclasses.replace(self.CONFIG, artifacts=str(tmp_path / "c"))
        pending = list(plan_campaign(cold, 4).shards)
        assert not store_fully_warm(cold, pending)

        warm = self._warm_store(tmp_path)
        assert store_fully_warm(warm, pending)
        # One evicted artifact and the pre-warm is back on.
        victim = next((tmp_path / "c").rglob("*.art"))
        victim.unlink()
        assert not store_fully_warm(warm, pending)

    def test_disabled_cache_never_reports_warm(self, tmp_path):
        warm = self._warm_store(tmp_path)
        pending = list(plan_campaign(warm, 4).shards)
        off = dataclasses.replace(warm, golden_cache=False)
        assert not store_fully_warm(off, pending)
        traced = dataclasses.replace(warm, trace=True)
        assert not store_fully_warm(traced, pending)
        assert not store_fully_warm(self.CONFIG, pending)

    def test_warm_inline_engine_skips_prewarm(self, tmp_path, fresh_cache):
        baseline = FaultInjectionCampaign(self.CONFIG).run()
        warm = self._warm_store(tmp_path)
        telemetry = EngineTelemetry()
        result = CampaignEngine(warm, jobs=1, telemetry=telemetry).run()
        assert result.records == baseline.records
        assert fresh_cache.stats()["blocks_prewarmed"] == 0
        cache = telemetry.golden_cache_summary()
        assert cache["translation_prewarm_skipped"] == 1
        assert cache["hit_rate"] == 1.0

    def test_cold_store_keeps_the_prewarm(self, tmp_path, fresh_cache):
        config = dataclasses.replace(self.CONFIG, artifacts=str(tmp_path / "c"))
        telemetry = EngineTelemetry()
        CampaignEngine(config, jobs=1, telemetry=telemetry).run()
        assert fresh_cache.stats()["blocks_prewarmed"] > 0
        cache = telemetry.golden_cache_summary()
        assert "translation_prewarm_skipped" not in cache
