"""Trial journal: durability, crash tolerance, campaign identity."""

import json

import pytest

from repro.engine.journal import TrialJournal, read_state
from repro.errors import JournalError
from repro.faults import CampaignConfig, FaultInjectionCampaign


@pytest.fixture(scope="module")
def records():
    cfg = CampaignConfig(benchmarks=("mcf",), n_injections=24, seed=6)
    return FaultInjectionCampaign(cfg).run().records


def indexed(records, start=0):
    return list(enumerate(records, start=start))


class TestRoundTrip:
    def test_append_and_read_back(self, tmp_path, records):
        path = tmp_path / "j.jsonl"
        with TrialJournal.create(path, digest="d1", n_shards=2, total_trials=24) as j:
            j.append_shard(0, indexed(records[:12]))
            j.append_shard(1, indexed(records[12:], start=12))
        state = read_state(path)
        assert state.completed_shards == {0, 1}
        assert state.completed_trials == 24
        merged = [r for i in (0, 1) for _, r in state.completed[i]]
        assert tuple(merged) == records

    def test_missing_or_empty_is_none(self, tmp_path):
        assert read_state(tmp_path / "absent.jsonl") is None
        empty = tmp_path / "empty.jsonl"
        empty.touch()
        assert read_state(empty) is None

    def test_double_append_rejected(self, tmp_path, records):
        path = tmp_path / "j.jsonl"
        with TrialJournal.create(path, digest="d1", n_shards=1, total_trials=12) as j:
            j.append_shard(0, indexed(records[:12]))
            with pytest.raises(JournalError, match="already journalled"):
                j.append_shard(0, indexed(records[:12]))


class TestCrashSafety:
    def test_partial_shard_is_not_completed(self, tmp_path, records):
        path = tmp_path / "j.jsonl"
        with TrialJournal.create(path, digest="d1", n_shards=2, total_trials=24) as j:
            j.append_shard(0, indexed(records[:12]))
        # Simulate a kill mid-shard-1: trial lines, no shard_done marker.
        with open(path, "a") as fh:
            fh.write(json.dumps({"kind": "trial", "shard": 1, "trial": 12,
                                 "rec": {"bogus": True}})[: 40])  # torn write
        state = read_state(path)
        assert state.completed_shards == {0}
        assert 1 not in state.partial  # torn tail ignored entirely

    def test_intact_partial_trials_surface_as_partial(self, tmp_path, records):
        path = tmp_path / "j.jsonl"
        with TrialJournal.create(path, digest="d1", n_shards=2, total_trials=24) as j:
            j.append_shard(0, indexed(records[:12]))
        from repro.persist import _record_to_dict

        with open(path, "a") as fh:
            fh.write(json.dumps({"kind": "trial", "shard": 1, "trial": 12,
                                 "rec": _record_to_dict(records[12])}) + "\n")
        state = read_state(path)
        assert state.completed_shards == {0}
        assert [t for t, _ in state.partial[1]] == [12]
        assert state.partial[1][0][1] == records[12]

    def test_marker_count_mismatch_is_corruption(self, tmp_path, records):
        path = tmp_path / "j.jsonl"
        with TrialJournal.create(path, digest="d1", n_shards=1, total_trials=12) as j:
            j.append_shard(0, indexed(records[:12]))
        lines = path.read_text().splitlines()
        del lines[3]  # drop one trial line but keep the marker
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="marker says"):
            read_state(path)


class TestSupersedingWrites:
    def test_torn_tail_superseded_by_retried_append(self, tmp_path, records):
        """A retry after a mid-append crash re-writes the shard; its
        ``shard_begin`` marker discards the stale torn tail."""
        path = tmp_path / "j.jsonl"
        with TrialJournal.create(path, digest="d1", n_shards=1, total_trials=12) as j:
            j.append_torn(0, indexed(records[:6]))
            j.append_shard(0, indexed(records[:12]))
        state = read_state(path)
        assert state.completed_shards == {0}
        assert not state.partial
        assert [r for _, r in state.completed[0]] == list(records[:12])

    def test_torn_tail_alone_reports_partial(self, tmp_path, records):
        path = tmp_path / "j.jsonl"
        with TrialJournal.create(path, digest="d1", n_shards=1, total_trials=12) as j:
            j.append_torn(0, indexed(records[:6]))
        state = read_state(path)
        assert not state.completed
        assert [t for t, _ in state.partial[0]] == list(range(6))

    def test_duplicate_shard_done_latest_wins(self, tmp_path, records):
        """Two complete recordings of the same shard (e.g. an append whose
        fsync result was lost, then retried): the reader keeps the latest."""
        path = tmp_path / "j.jsonl"
        with TrialJournal.create(path, digest="d1", n_shards=1, total_trials=12) as j:
            j.append_shard(0, indexed(records[:12]))
            # Bypass the writer's double-append guard to forge the duplicate.
            j.state.completed.pop(0)
            j.append_shard(0, indexed(records[12:24], start=0))
        state = read_state(path)
        assert state.completed_shards == {0}
        assert [r for _, r in state.completed[0]] == list(records[12:24])

    def test_failed_marker_roundtrip_and_healing(self, tmp_path, records):
        path = tmp_path / "j.jsonl"
        with TrialJournal.create(path, digest="d1", n_shards=2, total_trials=24) as j:
            j.append_failed(0, attempts=3, kind="timeout", error="hung")
            j.append_shard(1, indexed(records[12:], start=12))
        state = read_state(path)
        assert state.completed_shards == {1}
        assert state.failed[0] == {"attempts": 3, "kind": "timeout", "error": "hung"}
        # A later successful recording clears the quarantine marker.
        with TrialJournal.resume(path, digest="d1") as j:
            j.append_shard(0, indexed(records[:12]))
        state = read_state(path)
        assert state.completed_shards == {0, 1}
        assert not state.failed

    def test_failed_marker_never_shadows_success(self, tmp_path, records):
        path = tmp_path / "j.jsonl"
        with TrialJournal.create(path, digest="d1", n_shards=1, total_trials=12) as j:
            j.append_shard(0, indexed(records[:12]))
        with open(path, "a") as fh:
            fh.write(json.dumps({"kind": "shard_failed", "shard": 0,
                                 "attempts": 1, "error_kind": "exception",
                                 "error": "stale"}) + "\n")
        state = read_state(path)
        assert state.completed_shards == {0}
        assert not state.failed


class TestClose:
    def test_close_is_idempotent(self, tmp_path, records):
        path = tmp_path / "j.jsonl"
        j = TrialJournal.create(path, digest="d1", n_shards=1, total_trials=12)
        j.append_shard(0, indexed(records[:12]))
        j.close()
        j.close()  # second close must not raise on the closed handle
        assert read_state(path).completed_shards == {0}


class TestIdentity:
    def test_create_refuses_existing(self, tmp_path, records):
        path = tmp_path / "j.jsonl"
        TrialJournal.create(path, digest="d1", n_shards=1, total_trials=1).close()
        with pytest.raises(JournalError, match="already exists"):
            TrialJournal.create(path, digest="d1", n_shards=1, total_trials=1)

    def test_resume_validates_digest(self, tmp_path):
        path = tmp_path / "j.jsonl"
        TrialJournal.create(path, digest="d1", n_shards=1, total_trials=1).close()
        with pytest.raises(JournalError, match="different campaign"):
            TrialJournal.resume(path, digest="d2")
        j = TrialJournal.resume(path, digest="d1")
        assert j.state.completed == {}
        j.close()

    def test_resume_missing_journal(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            TrialJournal.resume(tmp_path / "absent.jsonl", digest="d1")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(JournalError, match="not a"):
            read_state(path)
