"""Public API surface: every documented export exists and is importable."""

import importlib

import pytest

PACKAGES = {
    "repro.machine": (
        "CPUCore", "CoreCheckpoint", "Memory", "MemoryCheckpoint",
        "Region", "RegisterFile", "Assembler", "parse_asm",
        "HardwareException", "AssertionViolation", "Vector", "classify_exception",
        "PerformanceCounterUnit", "Tracer", "Program", "Op",
    ),
    "repro.hypervisor": (
        "XenHypervisor", "Activation", "ActivationResult", "MachineCheckpoint",
        "REGISTRY",
        "ExitCategory", "HYPERCALL_NAMES", "EXCEPTION_NAMES", "Hardening",
        "DomainView", "VcpuView", "MemoryMap", "HypervisorLayout",
    ),
    "repro.ml": (
        "Dataset", "DecisionTreeClassifier", "RandomTreeClassifier",
        "RandomForestClassifier", "compile_tree", "CompiledRules",
        "entropy", "information_gain", "evaluate", "ConfusionMatrix",
    ),
    "repro.faults": (
        "FaultModel", "FaultSpec", "run_trial", "capture_golden",
        "CampaignConfig", "FaultInjectionCampaign", "TrialRecord",
        "FailureClass", "DetectionTechnique", "UndetectedKind",
    ),
    "repro.engine": (
        "CampaignEngine", "CampaignPlan", "ShardPlan", "BenchmarkSlice",
        "plan_campaign", "config_digest", "execute_shard",
        "TrialJournal", "JournalState", "read_state",
        "SampleJournal", "TrainingShard", "plan_training_shards", "payload_digest",
        "EngineTelemetry", "ProgressSnapshot", "stderr_progress",
        "CampaignStarted", "ShardStarted", "ShardFinished", "CampaignFinished",
    ),
    "repro.xentry": (
        "Xentry", "VMTransitionDetector", "RuntimeDetector", "FeatureVector",
        "TrainingConfig", "collect_dataset", "train_and_evaluate",
        "execute_training_shard", "training_digest",
        "RecoveryCostModel", "RecoveryManager", "estimate_recovery_overhead",
        "DetectionCostModel", "ShimInterceptor",
    ),
    "repro.workloads": (
        "BENCHMARKS", "get_profile", "WorkloadGenerator", "VirtMode",
        "GuestApplication", "RateDistribution",
    ),
    "repro.analysis": (
        "BoxStats", "Cdf", "ComparisonTable", "LatencyStudy",
        "PerfOverheadModel", "coverage_by_technique", "undetected_breakdown",
        "dataset_from_journal", "sample_journal_progress",
    ),
    "repro.service": (
        "DetectionService", "ServiceConfig", "ServiceReport",
        "FleetConfig", "FleetRow", "FleetSimulator", "HostStream",
        "MicroBatchScorer", "HostQueue", "OverflowPolicy", "ScoreTotals",
        "Counter", "Gauge", "Histogram", "MetricsRegistry", "ServiceMetrics",
        "MetricsServer",
    ),
    "repro.system": ("VirtualPlatform", "PlatformConfig"),
}


@pytest.mark.parametrize("package", sorted(PACKAGES))
def test_package_exports(package):
    module = importlib.import_module(package)
    for name in PACKAGES[package]:
        assert hasattr(module, name), f"{package}.{name} missing"
        assert name in module.__all__, f"{package}.{name} not in __all__"


@pytest.mark.parametrize("package", sorted(PACKAGES))
def test_all_entries_resolve(package):
    """Everything advertised in __all__ actually exists."""
    module = importlib.import_module(package)
    for name in module.__all__:
        assert getattr(module, name, None) is not None, f"{package}.{name}"


@pytest.mark.parametrize("package", sorted(PACKAGES))
def test_public_objects_are_documented(package):
    """Every public class/function carries a docstring."""
    module = importlib.import_module(package)
    assert module.__doc__
    for name in module.__all__:
        obj = getattr(module, name)
        if callable(obj) or isinstance(obj, type):
            assert obj.__doc__, f"{package}.{name} lacks a docstring"


def test_version_is_exposed():
    import repro

    assert repro.__version__.count(".") == 2
