"""Shared fixtures: a small mapped machine and program helpers."""

from __future__ import annotations

import pytest

from repro.machine import CPUCore, Memory, Region, parse_asm

TEXT_BASE = 0x0010_0000
HEAP_BASE = 0x0020_0000
STACK_BASE = 0x0030_0000
STACK_TOP = STACK_BASE + 0x1000


@pytest.fixture
def memory() -> Memory:
    """Memory with text (RX), heap (RW) and one stack page mapped."""
    mem = Memory()
    mem.map_region(Region("text", TEXT_BASE, 0x10000, writable=False, executable=True))
    mem.map_region(Region("heap", HEAP_BASE, 0x10000))
    mem.map_region(Region("stack", STACK_BASE, 0x1000))
    return mem


@pytest.fixture
def cpu(memory: Memory) -> CPUCore:
    """A core with rsp pointing at the top of the mapped stack."""
    core = CPUCore(0, memory)
    core.regs["rsp"] = STACK_TOP
    return core


@pytest.fixture
def assemble():
    """Assemble text source at the standard text base."""

    def _assemble(source: str):
        return parse_asm(source, base=TEXT_BASE)

    return _assemble
