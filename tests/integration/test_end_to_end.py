"""End-to-end integration: the full paper pipeline at miniature scale."""

import pytest

from repro.analysis import (
    LatencyStudy,
    coverage_by_technique,
    long_latency_breakdown,
)
from repro.faults import CampaignConfig, FaultInjectionCampaign
from repro.faults.outcomes import DetectionTechnique, FailureClass
from repro.system import PlatformConfig, VirtualPlatform
from repro.xentry import (
    TrainingConfig,
    VMTransitionDetector,
    collect_dataset,
    train_and_evaluate,
)


@pytest.fixture(scope="module")
def pipeline():
    """Train a detector and run a small campaign with it deployed."""
    train = collect_dataset(
        TrainingConfig(fault_free_runs=500, injection_runs=1500, seed=5),
        stream="train",
    )
    test = collect_dataset(
        TrainingConfig(fault_free_runs=250, injection_runs=750, seed=5),
        stream="test",
    )
    model = train_and_evaluate(train, test, algorithm="random_tree", seed=3)
    detector = VMTransitionDetector.from_classifier(model.classifier)
    campaign = FaultInjectionCampaign(
        CampaignConfig(n_injections=900, seed=44), detector=detector
    )
    return model, detector, campaign.run()


class TestPipeline:
    def test_classifier_reaches_operating_point(self, pipeline):
        model, _, _ = pipeline
        assert model.accuracy > 0.93
        assert model.false_positive_rate < 0.03

    def test_campaign_produces_all_three_techniques(self, pipeline):
        _, _, result = pipeline
        cov = coverage_by_technique(result.records)
        assert cov.hw_exception > 0
        assert cov.sw_assertion > 0
        assert cov.vm_transition > 0

    def test_coverage_is_high_with_detector(self, pipeline):
        _, _, result = pipeline
        cov = coverage_by_technique(result.records)
        assert cov.coverage > 0.7

    def test_detector_was_actually_consulted(self, pipeline):
        _, detector, result = pipeline
        assert detector.classifications > 100
        assert detector.total_comparisons >= detector.classifications

    def test_transition_detections_are_long_latency_bound(self, pipeline):
        """Everything the transition detector catches happened at a VM entry
        — detection latency is bounded by the accumulated execution length."""
        _, _, result = pipeline
        for record in result.records:
            if record.detected_by is DetectionTechnique.VM_TRANSITION:
                assert record.detection_latency is not None
                assert record.detection_latency >= 0

    def test_latency_ordering(self, pipeline):
        _, _, result = pipeline
        study = LatencyStudy.from_records(result.records)
        hw = study.percentile(DetectionTechnique.HW_EXCEPTION, 0.5)
        tr = study.percentile(DetectionTechnique.VM_TRANSITION, 0.5)
        if hw is not None and tr is not None:
            assert hw <= tr

    def test_long_latency_errors_exist(self, pipeline):
        _, _, result = pipeline
        breakdown = long_latency_breakdown(result.records)
        assert sum(total for _, total in breakdown.values()) > 10

    def test_campaign_is_reproducible_with_fresh_detector(self, pipeline):
        """Re-running with an identically-trained detector gives identical
        records (classifier, injector and hypervisor are all deterministic)."""
        model, _, result = pipeline
        detector2 = VMTransitionDetector.from_classifier(model.classifier)
        result2 = FaultInjectionCampaign(
            CampaignConfig(n_injections=900, seed=44), detector=detector2
        ).run()
        assert result2.records == result.records


class TestProtectedPlatformUnderFire:
    def test_protect_and_inject_interleaved(self):
        """The deployment API: faults observed through Xentry.protect."""
        platform = VirtualPlatform(PlatformConfig(seed=17))
        xentry = platform.deploy_xentry()
        hv = platform.hypervisor
        from repro.hypervisor import Activation, REGISTRY

        detections = 0
        for i in range(40):
            act = Activation(
                vmer=REGISTRY.by_name("do_irq").vmer, args=(i % 32,),
                domain_id=1 + i % 2, seq=i,
            )
            if i % 4 == 0:
                hv.cpu.schedule_register_flip(2, "rdi", 45)  # vector way out
            outcome = xentry.protect(act)
            if not outcome.vm_entry_permitted:
                detections += 1
        assert detections == 10  # every injected fault caught
        counts = xentry.detection_counts()
        assert counts[DetectionTechnique.SW_ASSERTION] == 10
