"""VirtualPlatform wiring."""

import pytest

from repro.errors import CampaignConfigError
from repro.hypervisor import ActivationResult
from repro.system import PlatformConfig, VirtualPlatform
from repro.workloads import VirtMode
from repro.xentry import ProtectedOutcome


class TestVirtualPlatform:
    def test_boots_with_defaults(self):
        platform = VirtualPlatform()
        assert platform.hypervisor.n_domains == 3
        assert platform.xentry is None

    def test_config_validation(self):
        with pytest.raises(CampaignConfigError):
            PlatformConfig(n_domains=1)

    def test_unprotected_workload_returns_activation_results(self):
        platform = VirtualPlatform(PlatformConfig(seed=6))
        results = platform.run_workload("mcf", n_activations=30)
        assert len(results) == 30
        assert all(isinstance(r, ActivationResult) for r in results)

    def test_protected_workload_returns_outcomes(self):
        platform = VirtualPlatform(PlatformConfig(seed=6))
        platform.deploy_xentry()
        results = platform.run_workload("postmark", n_activations=30)
        assert all(isinstance(r, ProtectedOutcome) for r in results)
        # Fault-free workload: everything clean.
        assert all(r.vm_entry_permitted for r in results)

    def test_activation_rates_shape(self):
        platform = VirtualPlatform(PlatformConfig(seed=6))
        rates = platform.activation_rates("freqmine", seconds=50)
        assert rates.shape == (50,)
        assert (rates > 0).all()

    def test_pv_rates_higher_than_hvm(self):
        platform = VirtualPlatform(PlatformConfig(seed=6))
        pv = platform.activation_rates("x264", mode=VirtMode.PV, seconds=200).mean()
        hvm = platform.activation_rates("x264", mode=VirtMode.HVM, seconds=200).mean()
        assert pv > hvm

    def test_mean_handler_instructions(self):
        platform = VirtualPlatform(PlatformConfig(seed=6))
        mean = platform.mean_handler_instructions("mcf", n_activations=60)
        assert 10 < mean < 5_000


class TestSmpPlatform:
    def test_smp_workload_spreads_across_cores(self):
        platform = VirtualPlatform(PlatformConfig(n_cores=4, seed=9))
        per_core = platform.run_workload_smp("postmark", n_activations=200)
        busy = [cpu for cpu, results in per_core.items() if results]
        assert len(busy) >= 2
        assert sum(len(r) for r in per_core.values()) == 200

    def test_scheduler_accounts_cpu_time(self):
        platform = VirtualPlatform(PlatformConfig(n_cores=2, seed=9))
        platform.run_workload_smp("mcf", n_activations=120)
        total_ticks = sum(v.total_ticks for v in platform.scheduler.vcpus)
        assert total_ticks == 120

    def test_single_core_smp_equals_plain_run(self):
        a = VirtualPlatform(PlatformConfig(n_cores=1, seed=9))
        per_core = a.run_workload_smp("mcf", n_activations=40)
        b = VirtualPlatform(PlatformConfig(n_cores=1, seed=9))
        plain = b.run_workload(benchmark="mcf", n_activations=40)
        assert [r.features for r in per_core[0]] == [r.features for r in plain]
