"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_subcommand_parses(self):
        parser = build_parser()
        for argv in (
            ["info"],
            ["rates", "--mode", "pv", "--seconds", "10"],
            ["train", "--scale", "0.05"],
            ["train", "--scale", "0.05", "--jobs", "2",
             "--journal-dir", "runs", "--resume"],
            ["train", "--datasets-from", "runs", "--save-model", "m.json"],
            ["campaign", "--injections", "100"],
            ["campaign", "--injections", "100", "--jobs", "4",
             "--journal", "j.jsonl", "--resume"],
            ["overhead"],
            ["recovery", "--seed", "9"],
            ["serve", "--model", "m.json", "--max-rows", "5000"],
            ["serve", "--model", "m.json", "--hosts", "200",
             "--vms-per-host", "8", "--duration", "5", "--port", "9109",
             "--batch-rows", "512", "--queue-depth", "2048",
             "--policy", "block", "--hold", "10", "--summary", "s.json"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_campaign_defaults_preserve_serial_behaviour(self):
        args = build_parser().parse_args(["campaign"])
        assert args.jobs == 1
        assert args.journal is None
        assert args.resume is False


class TestExecution:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "exit reasons" in out and "hypercall" in out and "38" in out

    def test_rates(self, capsys):
        assert main(["rates", "--mode", "pv", "--seconds", "50"]) == 0
        out = capsys.readouterr().out
        assert "postmark" in out and "median" in out

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "bzip2" in out and "average full overhead" in out

    def test_recovery(self, capsys):
        assert main(["recovery"]) == 0
        out = capsys.readouterr().out
        assert "1900 ns" in out or "1,900" in out

    def test_campaign_smoke(self, capsys):
        """A miniature campaign end to end through the CLI."""
        assert main(["campaign", "--injections", "120", "--scale", "0.03",
                     "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out and "Table II" in out

    def test_campaign_save_and_reanalyze(self, capsys, tmp_path):
        path = str(tmp_path / "records.jsonl")
        assert main(["campaign", "--injections", "80", "--scale", "0.03",
                     "--seed", "2", "--output", path]) == 0
        first = capsys.readouterr().out
        assert "records written" in first
        assert main(["campaign", "--records-from", path]) == 0
        second = capsys.readouterr().out
        assert "Fig. 8" in second
        # Re-analysis reproduces the same coverage rows.
        assert first.split("Fig. 8")[1] == second.split("Fig. 8")[1]

    def test_campaign_engine_jobs_matches_serial(self, capsys, tmp_path):
        """--jobs 2 through the CLI reports identical figures to serial."""
        argv = ["campaign", "--injections", "80", "--scale", "0.03", "--seed", "2"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        pooled = capsys.readouterr().out
        assert serial.split("Fig. 8")[1] == pooled.split("Fig. 8")[1]

    def test_campaign_journal_and_resume(self, capsys, tmp_path):
        """A journalled campaign resumes (fully satisfied from the journal)
        and the journal re-analyzes like a records file."""
        journal = str(tmp_path / "trials.jsonl")
        argv = ["campaign", "--injections", "80", "--scale", "0.03",
                "--seed", "2", "--journal", journal]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "journal at" in first
        assert (tmp_path / "trials.jsonl.manifest.json").exists()
        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert first.split("Fig. 8")[1] == resumed.split("Fig. 8")[1]
        assert main(["campaign", "--records-from", journal]) == 0
        reread = capsys.readouterr().out
        assert "trials durable (100%)" in reread
        assert first.split("Fig. 8")[1] == reread.split("Fig. 8")[1]

    def test_campaign_chaos_recovers_to_serial_figures(self, capsys):
        """Transient chaos crashes: retries succeed, figures match serial."""
        argv = ["campaign", "--injections", "80", "--scale", "0.03", "--seed", "2"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--chaos", "crash=0.5,seed=2", "--retries", "6"]) == 0
        captured = capsys.readouterr()
        assert serial.split("Fig. 8")[1] == captured.out.split("Fig. 8")[1]
        assert "retry" in captured.err

    def test_campaign_exhausted_budget_exits_degraded(self, capsys):
        """Persistent chaos: quarantine everything, exit 3 with a summary."""
        assert main(["campaign", "--injections", "40", "--scale", "0.03",
                     "--seed", "2", "--chaos", "crash=1.0,seed=1",
                     "--retries", "1"]) == 3
        captured = capsys.readouterr()
        assert "QUARANTINED" in captured.err
        assert "DEGRADED:" in captured.err
        assert "shards quarantined" in captured.err

    def test_campaign_resume_requires_journal(self, capsys):
        assert main(["campaign", "--resume"]) == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_train_saves_deployable_rules(self, capsys, tmp_path):
        path = str(tmp_path / "rules.json")
        assert main(["train", "--scale", "0.03", "--seed", "2",
                     "--save-rules", path]) == 0
        from repro.persist import load_rules

        rules = load_rules(path)
        assert rules.n_nodes >= 1

    def test_train_jobs_matches_serial(self, capsys):
        """--jobs 2 through the CLI reports identical classifier figures."""
        argv = ["train", "--scale", "0.03", "--seed", "2"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        pooled = capsys.readouterr().out
        # Everything between the dataset summaries and the timing footer —
        # class counts and both confusion reports — must match exactly.
        assert serial.split("(paper")[0] == pooled.split("(paper")[0]

    @pytest.fixture(scope="class")
    def saved_model(self, tmp_path_factory):
        """A tiny trained artifact for the serve tests."""
        path = tmp_path_factory.mktemp("serve") / "model.json"
        assert main(["train", "--scale", "0.02", "--seed", "2",
                     "--save-model", str(path)]) == 0
        return str(path)

    def test_serve_requires_stop_condition(self, capsys, tmp_path):
        assert main(["serve", "--model", "m.json"]) == 2
        assert "stop condition" in capsys.readouterr().err

    def test_serve_scores_the_fleet(self, capsys, saved_model):
        assert main(["serve", "--model", saved_model, "--seed", "7",
                     "--hosts", "6", "--max-rows", "3000", "--no-http"]) == 0
        out = capsys.readouterr().out
        assert "scored 3,000 rows" in out
        assert "detections:" in out and "p99" in out

    def test_serve_summary_is_batch_invariant(self, capsys, saved_model,
                                              tmp_path):
        """The CLI-level determinism contract: fixed seed + --max-rows =>
        identical totals across runs and --batch-rows settings."""
        import json as json_mod

        summaries = []
        for batch, name in (("64", "a.json"), ("64", "b.json"),
                            ("700", "c.json")):
            path = str(tmp_path / name)
            assert main(["serve", "--model", saved_model, "--seed", "7",
                         "--hosts", "6", "--max-rows", "3000", "--no-http",
                         "--batch-rows", batch, "--summary", path]) == 0
            summaries.append(json_mod.loads((tmp_path / name).read_text()))
        capsys.readouterr()
        assert summaries[0] == summaries[1] == summaries[2]
        assert summaries[0]["totals"]["rows_scored"] == 3000

    def test_serve_endpoint_scrapes_during_run(self, capsys, saved_model):
        import urllib.request

        assert main(["serve", "--model", saved_model, "--seed", "7",
                     "--hosts", "4", "--max-rows", "2000"]) == 0
        out = capsys.readouterr().out
        assert "serving /metrics and /healthz at http://" in out

        # Scrape an endpoint for real (bound to an ephemeral port).
        from repro.service import DetectionService, FleetConfig, ServiceConfig
        from repro.persist import load_model

        service = DetectionService(
            ServiceConfig(fleet=FleetConfig(hosts=2, seed=7), max_rows=500),
            load_model(saved_model),
        )
        service.run()
        server = service.endpoint().start()
        try:
            with urllib.request.urlopen(f"{server.url}/healthz", timeout=5) as r:
                body = r.read()
            # A run that produced positive detections reports itself degraded
            # (recoveries are being dispatched); a detection-free run is ok.
            expected = (b'"status": "degraded"'
                        if service.scorer.totals.detections
                        else b'"status": "ok"')
            assert expected in body
            with urllib.request.urlopen(f"{server.url}/metrics", timeout=5) as r:
                assert b"repro_rows_scored_total" in r.read()
        finally:
            server.stop()

    def test_train_journal_rebuild_and_model(self, capsys, tmp_path):
        """Journalled collection, offline re-training from the journals, and
        the saved model artifact all agree."""
        journal_dir = str(tmp_path / "runs")
        model_path = str(tmp_path / "model.json")
        assert main(["train", "--scale", "0.03", "--seed", "2",
                     "--journal-dir", journal_dir,
                     "--save-model", model_path]) == 0
        first = capsys.readouterr().out
        assert "sample journals at" in first
        assert (tmp_path / "runs" / "train.samples.jsonl").exists()
        assert (tmp_path / "runs" / "train.samples.jsonl.manifest.json").exists()
        assert main(["train", "--datasets-from", journal_dir]) == 0
        rebuilt = capsys.readouterr().out
        assert "rebuilt from sample journals" in rebuilt
        assert first.split("(paper")[0].split("train:")[1] == \
            rebuilt.split("(paper")[0].split("train:")[1]
        from repro.persist import load_model

        artifact = load_model(model_path)
        assert artifact.name == "random_tree"
        assert 0.0 < artifact.evaluation["accuracy"] <= 1.0


class TestScenarioCLI:
    """The --scenario flag: happy path, provenance on errors, byte-identity."""

    MIXED_YAML = (
        "faults:\n"
        "  register:\n    probability: 0.5\n"
        "  multibit:\n    probability: 0.2\n    n_bits: 3\n"
        "  burst:\n    probability: 0.2\n    n_flips: 3\n"
        "  memory:\n    probability: 0.1\n"
    )

    def test_parser_accepts_scenario(self):
        args = build_parser().parse_args(
            ["campaign", "--scenario", "examples/mixed.yaml"]
        )
        assert args.scenario == "examples/mixed.yaml"

    def test_mixed_scenario_reports_per_class_coverage(self, capsys, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "mixed.yaml"
        path.write_text(self.MIXED_YAML)
        assert main(["campaign", "--scenario", str(path), "--injections",
                     "120", "--scale", "0.03", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "scenario: mixed: register 50%" in out
        assert "Fig. 8b — coverage by fault class" in out
        assert "burst" in out and "memory" in out

    def test_bad_scenario_exits_2_with_provenance(self, capsys, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "bad.yaml"
        path.write_text("faults:\n  register:\n    subsystem: scheduler\n")
        assert main(["campaign", "--scenario", str(path), "--injections",
                     "50", "--scale", "0.03"]) == 2
        err = capsys.readouterr().err
        # The error names the file and the dotted key path (the provenance
        # satellite), so the user can fix the scenario without digging.
        assert str(path) in err
        assert "faults.register.subsystem" in err

    def test_missing_scenario_file_exits_2(self, capsys, tmp_path):
        pytest.importorskip("yaml")
        missing = str(tmp_path / "nope.yaml")
        assert main(["campaign", "--scenario", missing]) == 2
        assert missing in capsys.readouterr().err

    def test_degenerate_scenario_matches_plain_campaign(self, capsys, tmp_path):
        pytest.importorskip("yaml")
        scenario = tmp_path / "baseline.yaml"
        scenario.write_text("faults:\n  register:\n    probability: 1.0\n")
        plain, via = str(tmp_path / "plain.jsonl"), str(tmp_path / "scn.jsonl")
        assert main(["campaign", "--injections", "80", "--scale", "0.03",
                     "--seed", "2", "--output", plain]) == 0
        assert main(["campaign", "--scenario", str(scenario), "--injections",
                     "80", "--scale", "0.03", "--seed", "2",
                     "--output", via]) == 0
        capsys.readouterr()
        with open(plain, "rb") as a, open(via, "rb") as b:
            assert a.read() == b.read()
