"""Random forest ensemble (extension beyond the paper's single tree)."""

import numpy as np
import pytest

from repro.errors import CampaignConfigError, NotFittedError
from repro.ml import Dataset, RandomForestClassifier, RandomTreeClassifier, evaluate

from tests.ml.test_trees import separable_dataset


class TestForest:
    def test_fits_and_predicts(self):
        ds = separable_dataset(400, seed=2)
        forest = RandomForestClassifier(n_trees=7, seed=1).fit(ds)
        assert (forest.predict(ds.X) == ds.y).mean() > 0.95

    def test_generalizes_at_least_as_well_as_single_tree(self):
        train, test = separable_dataset(800, seed=3).split(0.7, np.random.default_rng(0))
        tree_acc = evaluate(
            test.y, RandomTreeClassifier(seed=1).fit(train).predict(test.X)
        ).accuracy
        forest_acc = evaluate(
            test.y, RandomForestClassifier(n_trees=9, seed=1).fit(train).predict(test.X)
        ).accuracy
        assert forest_acc >= tree_acc - 0.02

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict_one((1, 2, 3, 4, 5))

    def test_config_validation(self):
        with pytest.raises(CampaignConfigError):
            RandomForestClassifier(n_trees=0)
        with pytest.raises(CampaignConfigError):
            RandomForestClassifier().fit(Dataset.from_samples([], []))

    def test_deterministic_given_seed(self):
        ds = separable_dataset(300, seed=5)
        a = RandomForestClassifier(n_trees=5, seed=9).fit(ds)
        b = RandomForestClassifier(n_trees=5, seed=9).fit(ds)
        assert (a.predict(ds.X) == b.predict(ds.X)).all()

    def test_detector_protocol(self):
        ds = separable_dataset(300, seed=6)
        forest = RandomForestClassifier(n_trees=5, seed=2).fit(ds)
        flags = [forest.flags_incorrect(tuple(r)) for r in ds.X[:50]]
        assert any(flags) or not ds.y[:50].any()

    def test_deployment_cost_scales_with_ensemble(self):
        ds = separable_dataset(300, seed=7)
        small = RandomForestClassifier(n_trees=3, seed=2).fit(ds)
        big = RandomForestClassifier(n_trees=12, seed=2).fit(ds)
        assert big.deployment_comparisons > small.deployment_comparisons
        # The single tree the paper deploys is an order of magnitude cheaper.
        single = RandomTreeClassifier(seed=2).fit(ds)
        from repro.ml import compile_tree

        assert compile_tree(single).max_depth < big.deployment_comparisons
