"""Decision tree, random tree, compiled rules, and metrics."""

import numpy as np
import pytest

from repro.errors import DatasetError, NotFittedError
from repro.ml import (
    CORRECT,
    Dataset,
    DecisionTreeClassifier,
    INCORRECT,
    RandomTreeClassifier,
    compile_tree,
    evaluate,
    features_per_node,
)


def separable_dataset(n=200, seed=0) -> Dataset:
    """Synthetic transition-detection-shaped data: 5 integer features where
    class INCORRECT means 'RT stretched or shrunk away from its per-VMER norm'."""
    rng = np.random.default_rng(seed)
    vmer = rng.integers(0, 8, size=n)
    base_rt = 100 + vmer * 50
    correct = rng.random(n) < 0.75
    rt = np.where(correct, base_rt + rng.integers(-10, 10, n), base_rt + rng.integers(80, 200, n))
    br = rt // 5 + rng.integers(0, 3, n)
    rm = rt // 4 + rng.integers(0, 3, n)
    wm = rt // 6 + rng.integers(0, 3, n)
    X = np.column_stack([vmer, rt, br, rm, wm]).astype(np.int64)
    y = (~correct).astype(np.int8)
    return Dataset(X, y)


class TestDataset:
    def test_class_counts(self):
        ds = Dataset.from_samples([(1, 2, 3, 4, 5), (2, 3, 4, 5, 6)], [0, 1])
        assert ds.class_counts() == (1, 1)

    def test_shape_validation(self):
        with pytest.raises(DatasetError):
            Dataset(np.zeros((3, 2)), np.zeros(3))  # 2 cols vs 5 names
        with pytest.raises(DatasetError):
            Dataset(np.zeros((3, 5)), np.zeros(4))
        with pytest.raises(DatasetError):
            Dataset(np.zeros((2, 5)), np.array([0, 7]))

    def test_split_partitions_all_rows(self):
        ds = separable_dataset(100)
        train, test = ds.split(0.7, np.random.default_rng(0))
        assert len(train) + len(test) == 100
        assert len(train) == 70

    def test_concat(self):
        a, b = separable_dataset(10, 1), separable_dataset(20, 2)
        assert len(a.concat(b)) == 30

    def test_concat_schema_mismatch(self):
        a = separable_dataset(4)
        b = Dataset(a.X, a.y, feature_names=("a", "b", "c", "d", "e"))
        with pytest.raises(DatasetError):
            a.concat(b)

    def test_describe_mentions_counts(self):
        text = separable_dataset(50).describe()
        assert "50 samples" in text and "VMER" in text

    def test_empty_from_samples(self):
        ds = Dataset.from_samples([], [])
        assert len(ds) == 0


class TestDecisionTree:
    def test_fits_separable_data_perfectly_in_sample(self):
        ds = separable_dataset()
        tree = DecisionTreeClassifier().fit(ds)
        assert (tree.predict(ds.X) == ds.y).mean() > 0.98

    def test_generalizes_to_held_out(self):
        train, test = separable_dataset(600).split(0.7, np.random.default_rng(1))
        tree = DecisionTreeClassifier().fit(train)
        cm = evaluate(test.y, tree.predict(test.X))
        assert cm.accuracy > 0.9

    def test_max_depth_zero_predicts_majority(self):
        ds = separable_dataset()
        tree = DecisionTreeClassifier(max_depth=0).fit(ds)
        majority = INCORRECT if ds.y.sum() * 2 > len(ds) else CORRECT
        assert set(tree.predict(ds.X)) == {majority}
        assert tree.n_nodes == 1

    def test_depth_respects_cap(self):
        tree = DecisionTreeClassifier(max_depth=3).fit(separable_dataset())
        assert tree.depth <= 3

    def test_min_samples_leaf_limits_fragmentation(self):
        big_leaf = DecisionTreeClassifier(min_samples_leaf=40).fit(separable_dataset())
        small_leaf = DecisionTreeClassifier(min_samples_leaf=1).fit(separable_dataset())
        assert big_leaf.n_leaves <= small_leaf.n_leaves

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict_one((1, 2, 3, 4, 5))

    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError):
            DecisionTreeClassifier().fit(Dataset.from_samples([], []))

    def test_pure_dataset_yields_single_leaf(self):
        ds = Dataset.from_samples([(i, 0, 0, 0, 0) for i in range(10)], [0] * 10)
        tree = DecisionTreeClassifier().fit(ds)
        assert tree.n_nodes == 1
        assert tree.predict_one((99, 0, 0, 0, 0)) == CORRECT

    def test_rules_text_names_features(self):
        tree = DecisionTreeClassifier().fit(separable_dataset())
        text = tree.rules_text()
        assert "if " in text and "=>" in text
        assert any(name in text for name in ("VMER", "RT", "BR", "RM", "WM"))

    def test_node_leaf_counts_consistent(self):
        tree = DecisionTreeClassifier().fit(separable_dataset())
        # A binary tree with L leaves has 2L - 1 nodes.
        assert tree.n_nodes == 2 * tree.n_leaves - 1


class TestRandomTree:
    def test_feature_subsample_size_matches_paper(self):
        assert features_per_node(5) == 3  # "which is three in our case"
        assert features_per_node(1) == 1
        assert features_per_node(8) == 4
        assert features_per_node(0) == 0

    def test_fits_and_generalizes(self):
        train, test = separable_dataset(600).split(0.7, np.random.default_rng(2))
        tree = RandomTreeClassifier(seed=5).fit(train)
        cm = evaluate(test.y, tree.predict(test.X))
        assert cm.accuracy > 0.85

    def test_same_seed_reproduces_tree(self):
        ds = separable_dataset()
        a = RandomTreeClassifier(seed=9).fit(ds)
        b = RandomTreeClassifier(seed=9).fit(ds)
        assert (a.predict(ds.X) == b.predict(ds.X)).all()
        assert a.n_nodes == b.n_nodes

    def test_different_seeds_may_differ_structurally(self):
        ds = separable_dataset(seed=4)
        trees = {RandomTreeClassifier(seed=s).fit(ds).n_nodes for s in range(6)}
        assert len(trees) > 1  # randomization does change structure


class TestCompiledRules:
    def test_compiled_matches_tree_predictions(self):
        ds = separable_dataset()
        tree = DecisionTreeClassifier().fit(ds)
        rules = compile_tree(tree)
        assert (rules.predict(ds.X) == tree.predict(ds.X)).all()

    def test_compiled_random_tree_matches_too(self):
        ds = separable_dataset(seed=8)
        tree = RandomTreeClassifier(seed=1).fit(ds)
        rules = compile_tree(tree)
        assert (rules.predict(ds.X) == tree.predict(ds.X)).all()

    def test_traversal_depth_bounded_by_max_depth(self):
        ds = separable_dataset()
        tree = DecisionTreeClassifier(max_depth=6).fit(ds)
        rules = compile_tree(tree)
        assert rules.max_depth <= 6
        for row in ds.X[:50]:
            _, comparisons = rules.classify(row)
            assert comparisons <= rules.max_depth

    def test_mean_traversal_depth_positive(self):
        rules = compile_tree(DecisionTreeClassifier().fit(separable_dataset()))
        assert 0 < rules.mean_traversal_depth(separable_dataset().X) <= rules.max_depth

    def test_single_leaf_tree_classifies_in_zero_comparisons(self):
        ds = Dataset.from_samples([(1, 1, 1, 1, 1)] * 4, [0] * 4)
        rules = compile_tree(DecisionTreeClassifier().fit(ds))
        label, comparisons = rules.classify((9, 9, 9, 9, 9))
        assert label == CORRECT and comparisons == 0
        assert rules.max_depth == 0

    def test_unfitted_tree_rejected(self):
        with pytest.raises(NotFittedError):
            compile_tree(DecisionTreeClassifier())

    def test_flags_incorrect_predicate(self):
        ds = separable_dataset()
        rules = compile_tree(DecisionTreeClassifier().fit(ds))
        flagged = [rules.flags_incorrect(row) for row in ds.X]
        assert any(flagged) and not all(flagged)


class TestMetrics:
    def test_perfect_predictions(self):
        y = np.array([0, 0, 1, 1], dtype=np.int8)
        cm = evaluate(y, y)
        assert cm.accuracy == 1.0
        assert cm.false_positive_rate == 0.0
        assert cm.detection_rate == 1.0

    def test_all_wrong(self):
        y = np.array([0, 1], dtype=np.int8)
        cm = evaluate(y, 1 - y)
        assert cm.accuracy == 0.0
        assert cm.false_positive_rate == 1.0
        assert cm.miss_rate == 1.0

    def test_fp_direction_is_correct_flagged_incorrect(self):
        y_true = np.array([0, 0, 0, 0], dtype=np.int8)
        y_pred = np.array([0, 1, 0, 0], dtype=np.int8)
        cm = evaluate(y_true, y_pred)
        assert cm.false_positive == 1
        assert cm.false_positive_rate == pytest.approx(0.25)

    def test_report_text(self):
        y = np.array([0, 1, 1, 0], dtype=np.int8)
        text = evaluate(y, y).report("random tree")
        assert "random tree" in text and "accuracy" in text

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            evaluate(np.zeros(3), np.zeros(4))

    def test_degenerate_empty(self):
        cm = evaluate(np.array([]), np.array([]))
        assert cm.accuracy == 0.0 and cm.total == 0
