"""Property-based tests for the ML stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    Dataset,
    DecisionTreeClassifier,
    best_split,
    compile_tree,
    entropy,
    evaluate,
    information_gain,
)

labels_strategy = st.lists(st.integers(0, 1), min_size=2, max_size=80).map(
    lambda xs: np.array(xs, dtype=np.int8)
)


class TestEntropyProperties:
    @given(labels=labels_strategy)
    def test_entropy_bounded_zero_one(self, labels):
        assert 0.0 <= entropy(labels) <= 1.0 + 1e-12

    @given(labels=labels_strategy, mask_bits=st.lists(st.booleans(), min_size=2, max_size=80))
    def test_gain_nonnegative_and_bounded(self, labels, mask_bits):
        mask = np.array((mask_bits * 40)[: len(labels)], dtype=bool)
        gain = information_gain(labels, mask)
        assert -1e-9 <= gain <= entropy(labels) + 1e-9

    @given(
        data=st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 1)), min_size=2, max_size=100
        )
    )
    def test_best_split_gain_is_achievable(self, data):
        values = np.array([d[0] for d in data], dtype=np.int64)
        labels = np.array([d[1] for d in data], dtype=np.int8)
        split = best_split(values, labels, 0)
        if split is not None:
            realized = information_gain(labels, values <= split.threshold)
            assert abs(realized - split.gain) < 1e-9
            assert split.n_left + split.n_right == len(values)


@st.composite
def small_dataset(draw):
    n = draw(st.integers(min_value=4, max_value=60))
    X = np.array(
        draw(
            st.lists(
                st.tuples(*([st.integers(0, 200)] * 5)), min_size=n, max_size=n
            )
        ),
        dtype=np.int64,
    )
    y = np.array(draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)), dtype=np.int8)
    return Dataset(X, y)


class TestTreeProperties:
    @settings(max_examples=40, deadline=None)
    @given(ds=small_dataset())
    def test_compiled_rules_always_agree_with_tree(self, ds):
        tree = DecisionTreeClassifier(max_depth=8).fit(ds)
        rules = compile_tree(tree)
        assert (rules.predict(ds.X) == tree.predict(ds.X)).all()

    @settings(max_examples=40, deadline=None)
    @given(ds=small_dataset())
    def test_training_accuracy_at_least_majority(self, ds):
        """A fitted tree can never do worse in-sample than the majority class."""
        tree = DecisionTreeClassifier().fit(ds)
        cm = evaluate(ds.y, tree.predict(ds.X))
        majority = max(ds.y.sum(), len(ds) - ds.y.sum()) / len(ds)
        assert cm.accuracy >= majority - 1e-12

    @settings(max_examples=25, deadline=None)
    @given(ds=small_dataset(), depth=st.integers(0, 6))
    def test_depth_cap_is_respected(self, ds, depth):
        tree = DecisionTreeClassifier(max_depth=depth).fit(ds)
        assert tree.depth <= depth
        assert compile_tree(tree).max_depth <= depth

    @settings(max_examples=25, deadline=None)
    @given(ds=small_dataset())
    def test_confusion_matrix_totals(self, ds):
        tree = DecisionTreeClassifier(max_depth=4).fit(ds)
        cm = evaluate(ds.y, tree.predict(ds.X))
        assert cm.total == len(ds)
