"""Vectorized batch inference: oracle equivalence, edge cases, tie-break.

``CompiledRules.predict`` (one :meth:`classify` walk per row) is the
differential oracle; ``predict_batch`` must be bit-identical to it on every
input — labels *and* traversal comparison counts — for single trees and for
the forest's matrix-reduction vote.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError, NotFittedError
from repro.ml import (
    CORRECT,
    CompiledRules,
    Dataset,
    DecisionTreeClassifier,
    INCORRECT,
    RandomForestClassifier,
    compile_tree,
    evaluate,
)

_LEAF = -1


@st.composite
def labeled_dataset(draw):
    n = draw(st.integers(min_value=4, max_value=60))
    X = np.array(
        draw(
            st.lists(
                st.tuples(*([st.integers(0, 200)] * 5)), min_size=n, max_size=n
            )
        ),
        dtype=np.int64,
    )
    y = np.array(
        draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)), dtype=np.int8
    )
    return Dataset(X, y)


def leaf_rules(prediction: int) -> CompiledRules:
    """A single-leaf rule table that always predicts ``prediction``."""
    return CompiledRules(
        feature=np.array([_LEAF], dtype=np.int16),
        threshold=np.array([0], dtype=np.int64),
        left=np.array([0], dtype=np.int32),
        right=np.array([0], dtype=np.int32),
        prediction=np.array([prediction], dtype=np.int8),
        feature_names=("f0", "f1", "f2", "f3", "f4"),
    )


class TestTreeBatchEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(ds=labeled_dataset())
    def test_batch_labels_match_per_row_oracle(self, ds):
        rules = compile_tree(DecisionTreeClassifier(max_depth=8).fit(ds))
        assert (rules.predict_batch(ds.X) == rules.predict(ds.X)).all()

    @settings(max_examples=40, deadline=None)
    @given(ds=labeled_dataset())
    def test_batch_comparisons_match_per_row_walks(self, ds):
        rules = compile_tree(DecisionTreeClassifier(max_depth=8).fit(ds))
        labels, comparisons = rules.classify_batch(ds.X)
        expected = [rules.classify(row) for row in ds.X]
        assert list(labels) == [label for label, _ in expected]
        assert list(comparisons) == [c for _, c in expected]

    @settings(max_examples=20, deadline=None)
    @given(ds=labeled_dataset())
    def test_forest_batch_matches_per_row_oracle(self, ds):
        forest = RandomForestClassifier(n_trees=5, max_depth=6, seed=3).fit(ds)
        assert (forest.predict_batch(ds.X) == forest.predict(ds.X)).all()

    def test_mean_traversal_depth_bounded_by_max_depth(self):
        X = np.arange(50, dtype=np.int64).reshape(10, 5)
        ds = Dataset(X, (X[:, 0] > 22).astype(np.int8))
        rules = compile_tree(DecisionTreeClassifier(max_depth=4).fit(ds))
        assert 0.0 < rules.mean_traversal_depth(ds.X) <= rules.max_depth


class TestEmptyInputs:
    def test_tree_batch_on_empty_matrix(self):
        rules = leaf_rules(CORRECT)
        empty = np.empty((0, 5), dtype=np.int64)
        labels, comparisons = rules.classify_batch(empty)
        assert labels.shape == comparisons.shape == (0,)
        assert len(rules.predict(empty)) == len(rules.predict_batch(empty)) == 0
        assert rules.mean_traversal_depth(empty) == 0.0

    def test_fitted_forest_on_empty_matrix(self):
        ds = Dataset(
            np.arange(40, dtype=np.int64).reshape(8, 5),
            np.array([0, 1] * 4, dtype=np.int8),
        )
        forest = RandomForestClassifier(n_trees=3, seed=1).fit(ds)
        empty = np.empty((0, 5), dtype=np.int64)
        assert len(forest.predict(empty)) == len(forest.predict_batch(empty)) == 0

    def test_unfitted_forest_raises_even_on_empty(self):
        forest = RandomForestClassifier(n_trees=3)
        empty = np.empty((0, 5), dtype=np.int64)
        with pytest.raises(NotFittedError):
            forest.predict(empty)
        with pytest.raises(NotFittedError):
            forest.predict_batch(empty)

    def test_evaluate_on_empty_arrays(self):
        cm = evaluate(np.empty(0, dtype=np.int8), np.empty(0, dtype=np.int8))
        assert cm.total == 0
        assert cm.accuracy == 0.0
        assert cm.false_positive_rate == 0.0
        assert cm.detection_rate == 0.0

    def test_evaluate_shape_mismatch(self):
        with pytest.raises(DatasetError, match="shape mismatch"):
            evaluate(np.zeros(3, dtype=np.int8), np.zeros(2, dtype=np.int8))

    def test_false_positive_rate_with_zero_correct_samples(self):
        ones = np.ones(4, dtype=np.int8)
        cm = evaluate(ones, ones)  # all-incorrect ground truth
        assert cm.false_positive_rate == 0.0
        assert cm.detection_rate == 1.0


class TestForestTieBreak:
    def _split_jury(self) -> RandomForestClassifier:
        """An even forest whose members disagree 1-1 on every input."""
        forest = RandomForestClassifier(n_trees=2)
        forest._rules = [leaf_rules(CORRECT), leaf_rules(INCORRECT)]
        return forest

    def test_tie_breaks_toward_correct_per_row(self):
        forest = self._split_jury()
        assert forest.predict_one((1, 2, 3, 4, 5)) == CORRECT
        assert not forest.flags_incorrect((1, 2, 3, 4, 5))

    def test_tie_breaks_toward_correct_in_batch(self):
        forest = self._split_jury()
        X = np.arange(20, dtype=np.int64).reshape(4, 5)
        assert (forest.predict(X) == CORRECT).all()
        assert (forest.predict_batch(X) == CORRECT).all()

    def test_strict_majority_still_flags(self):
        forest = RandomForestClassifier(n_trees=2)
        forest._rules = [leaf_rules(INCORRECT), leaf_rules(INCORRECT)]
        X = np.arange(10, dtype=np.int64).reshape(2, 5)
        assert (forest.predict_batch(X) == INCORRECT).all()
        assert forest.predict_one((0, 0, 0, 0, 0)) == INCORRECT
