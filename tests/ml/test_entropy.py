"""Entropy and information-gain: paper's worked example plus invariants."""

import numpy as np
import pytest

from repro.ml import best_split, entropy, information_gain


class TestEntropy:
    def test_pure_set_has_zero_entropy(self):
        assert entropy(np.zeros(10, dtype=np.int8)) == 0.0
        assert entropy(np.ones(10, dtype=np.int8)) == 0.0

    def test_balanced_set_has_one_bit(self):
        labels = np.array([0, 1] * 50, dtype=np.int8)
        assert entropy(labels) == pytest.approx(1.0)

    def test_empty_set_has_zero_entropy(self):
        assert entropy(np.array([], dtype=np.int8)) == 0.0

    def test_symmetry_in_class_swap(self):
        a = np.array([0] * 3 + [1] * 7, dtype=np.int8)
        b = np.array([0] * 7 + [1] * 3, dtype=np.int8)
        assert entropy(a) == pytest.approx(entropy(b))

    def test_paper_example_dataset_entropy(self):
        """Section III.B: 10 correct + 5 incorrect.

        The paper prints 0.276 (a typo — natural-log value is ~0.6365/2.303;
        the true base-2 entropy of (10/15, 5/15) is 0.918).  We verify the
        mathematically correct value for the paper's class mix.
        """
        labels = np.array([0] * 10 + [1] * 5, dtype=np.int8)
        expected = -(10 / 15) * np.log2(10 / 15) - (5 / 15) * np.log2(5 / 15)
        assert entropy(labels) == pytest.approx(expected)
        assert entropy(labels) == pytest.approx(0.9183, abs=1e-4)


class TestInformationGain:
    def test_perfect_split_recovers_full_entropy(self):
        labels = np.array([0] * 5 + [1] * 5, dtype=np.int8)
        mask = np.array([True] * 5 + [False] * 5)
        assert information_gain(labels, mask) == pytest.approx(entropy(labels))

    def test_useless_split_has_zero_gain(self):
        labels = np.array([0, 1, 0, 1], dtype=np.int8)
        mask = np.array([True, True, False, False])
        assert information_gain(labels, mask) == pytest.approx(0.0)

    def test_gain_never_negative(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            labels = rng.integers(0, 2, size=30).astype(np.int8)
            mask = rng.integers(0, 2, size=30).astype(bool)
            assert information_gain(labels, mask) >= -1e-12

    def test_paper_rt_cut_point_example(self):
        """Section III.B worked example: cutting RT at 200 beats cutting at 100.

        RT=100: left has 5 correct + 2 incorrect, right 5 correct + 3 incorrect.
        RT=200: left has all 10 correct, right all 5 incorrect (perfect).
        """
        # RT values realizing those partitions: 5 correct below 100, 5 correct
        # in (100, 200], 5 incorrect above 200... except RT<=100 must carve
        # out 5 correct + 2 incorrect, so two incorrect sit below 100.
        rt = np.array([50, 55, 60, 65, 70, 150, 155, 160, 165, 170, 80, 90, 250, 260, 270],
                      dtype=np.int64)
        labels = np.array([0] * 10 + [1] * 5, dtype=np.int8)
        gain_100 = information_gain(labels, rt <= 100)
        gain_200 = information_gain(labels, rt <= 200)
        assert gain_200 > gain_100
        # And with the paper's clean RT=200 partition (10 correct | 5 incorrect):
        rt = np.array([50] * 5 + [150] * 5 + [250, 260, 270, 280, 290], dtype=np.int64)
        gain_100 = information_gain(labels, rt <= 100)
        gain_200 = information_gain(labels, rt <= 200)
        assert gain_200 > gain_100
        assert gain_200 == pytest.approx(entropy(labels))  # perfect separation


class TestBestSplit:
    def test_finds_perfect_threshold(self):
        values = np.array([1, 2, 3, 10, 11, 12], dtype=np.int64)
        labels = np.array([0, 0, 0, 1, 1, 1], dtype=np.int8)
        split = best_split(values, labels, feature=2)
        assert split is not None
        assert split.threshold == 3
        assert split.feature == 2
        assert split.gain == pytest.approx(1.0)
        assert (split.n_left, split.n_right) == (3, 3)

    def test_constant_column_yields_none(self):
        values = np.full(8, 42, dtype=np.int64)
        labels = np.array([0, 1] * 4, dtype=np.int8)
        assert best_split(values, labels, 0) is None

    def test_pure_labels_yield_none(self):
        values = np.arange(8, dtype=np.int64)
        labels = np.zeros(8, dtype=np.int8)
        assert best_split(values, labels, 0) is None

    def test_single_sample_yields_none(self):
        assert best_split(np.array([1]), np.array([1], dtype=np.int8), 0) is None

    def test_threshold_lies_on_existing_value(self):
        """Integer thresholds must equal an observed value (compilable rules)."""
        rng = np.random.default_rng(3)
        values = rng.integers(0, 1000, size=200).astype(np.int64)
        labels = (values > 437).astype(np.int8)
        split = best_split(values, labels, 0)
        assert split is not None
        assert split.threshold in values

    def test_matches_bruteforce_gain(self):
        rng = np.random.default_rng(11)
        values = rng.integers(0, 30, size=60).astype(np.int64)
        labels = rng.integers(0, 2, size=60).astype(np.int8)
        split = best_split(values, labels, 0)
        brute_best = max(
            information_gain(labels, values <= t) for t in np.unique(values)[:-1]
        )
        if split is None:
            assert brute_best <= 1e-12
        else:
            assert split.gain == pytest.approx(brute_best)
