"""Reduced-error pruning and cross-validation."""

import numpy as np
import pytest

from repro.errors import CampaignConfigError, NotFittedError
from repro.ml import Dataset, DecisionTreeClassifier, RandomTreeClassifier, compile_tree, evaluate
from repro.ml.pruning import cross_validate, reduced_error_prune

from tests.ml.test_trees import separable_dataset


def noisy_dataset(n=600, seed=0) -> Dataset:
    """Separable structure plus label noise: exactly what overfits a tree."""
    ds = separable_dataset(n, seed)
    rng = np.random.default_rng(seed + 1)
    y = ds.y.copy()
    flip = rng.random(n) < 0.08
    y[flip] = 1 - y[flip]
    return Dataset(ds.X, y)


class TestReducedErrorPruning:
    def test_pruning_shrinks_an_overfit_tree(self):
        data = noisy_dataset()
        train, prune_set = data.split(0.6, np.random.default_rng(1))
        tree = DecisionTreeClassifier(max_depth=32, min_samples_leaf=1).fit(train)
        pruned, report = reduced_error_prune(tree, prune_set)
        assert report.nodes_removed > 0
        assert pruned.n_nodes < tree.n_nodes
        assert report.accuracy_after >= report.accuracy_before

    def test_pruning_does_not_hurt_heldout_accuracy(self):
        data = noisy_dataset(900, seed=4)
        rng = np.random.default_rng(2)
        train, rest = data.split(0.5, rng)
        prune_set, test = rest.split(0.5, rng)
        tree = DecisionTreeClassifier(max_depth=32, min_samples_leaf=1).fit(train)
        pruned, _ = reduced_error_prune(tree, prune_set)
        acc_before = evaluate(test.y, tree.predict(test.X)).accuracy
        acc_after = evaluate(test.y, pruned.predict(test.X)).accuracy
        assert acc_after >= acc_before - 0.03

    def test_original_classifier_untouched(self):
        data = noisy_dataset()
        train, prune_set = data.split(0.6, np.random.default_rng(3))
        tree = DecisionTreeClassifier(max_depth=32, min_samples_leaf=1).fit(train)
        nodes_before = tree.n_nodes
        reduced_error_prune(tree, prune_set)
        assert tree.n_nodes == nodes_before

    def test_pruned_tree_is_cheaper_to_deploy(self):
        """The operational payoff: fewer worst-case comparisons per VM entry."""
        data = noisy_dataset(800, seed=7)
        train, prune_set = data.split(0.6, np.random.default_rng(5))
        tree = RandomTreeClassifier(max_depth=32, min_samples_leaf=1, seed=2).fit(train)
        pruned, _ = reduced_error_prune(tree, prune_set)
        assert compile_tree(pruned).max_depth <= compile_tree(tree).max_depth
        assert compile_tree(pruned).n_nodes < compile_tree(tree).n_nodes

    def test_requires_fitted_tree_and_data(self):
        with pytest.raises(NotFittedError):
            reduced_error_prune(DecisionTreeClassifier(), separable_dataset(10))
        tree = DecisionTreeClassifier().fit(separable_dataset(50))
        with pytest.raises(CampaignConfigError):
            reduced_error_prune(tree, Dataset.from_samples([], []))


class TestCrossValidation:
    def test_k_folds_produce_k_matrices(self):
        data = separable_dataset(300, seed=9)
        matrices = cross_validate(
            lambda: DecisionTreeClassifier(max_depth=16), data, k=5, seed=1
        )
        assert len(matrices) == 5
        assert sum(m.total for m in matrices) == len(data)

    def test_separable_data_validates_well(self):
        data = separable_dataset(400, seed=10)
        matrices = cross_validate(lambda: RandomTreeClassifier(seed=3), data, k=4)
        assert np.mean([m.accuracy for m in matrices]) > 0.9

    def test_deterministic_given_seed(self):
        data = separable_dataset(200, seed=11)
        a = cross_validate(lambda: DecisionTreeClassifier(), data, k=3, seed=7)
        b = cross_validate(lambda: DecisionTreeClassifier(), data, k=3, seed=7)
        assert [m.accuracy for m in a] == [m.accuracy for m in b]

    def test_validation_of_arguments(self):
        data = separable_dataset(20)
        with pytest.raises(CampaignConfigError):
            cross_validate(lambda: DecisionTreeClassifier(), data, k=1)
        with pytest.raises(CampaignConfigError):
            cross_validate(lambda: DecisionTreeClassifier(), data, k=50)
