"""The working recovery implementation (Section VI, executed for real)."""

import pytest

from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.ml import CORRECT, Dataset, DecisionTreeClassifier
from repro.xentry import VMTransitionDetector, Xentry
from repro.xentry.recovery_exec import RecoveryManager


def permissive_detector() -> VMTransitionDetector:
    ds = Dataset.from_samples([(i, 10 * i, i, i, i) for i in range(8)], [CORRECT] * 8)
    return VMTransitionDetector.from_classifier(DecisionTreeClassifier().fit(ds))


@pytest.fixture()
def manager() -> RecoveryManager:
    hv = XenHypervisor(seed=33)
    return RecoveryManager(Xentry(hv, transition_detector=permissive_detector()))


def act(name: str, *args: int, seq=0, domain=1) -> Activation:
    return Activation(vmer=REGISTRY.by_name(name).vmer, args=args,
                      domain_id=domain, seq=seq)


class TestCleanPath:
    def test_clean_activation_needs_no_recovery(self, manager):
        outcome = manager.protect(act("xen_version", 1))
        assert not outcome.detected and not outcome.recovered
        assert outcome.result is not None
        assert manager.recoveries == 0

    def test_snapshot_roundtrip_is_identity(self, manager):
        hv = manager.xentry.hv
        snapshot = manager.snapshot_critical()
        before = hv.memory.checkpoint()
        manager.restore_critical(snapshot)
        assert hv.memory.checkpoint() == before


class TestRecoveryFromRealFaults:
    def test_hw_exception_recovers_to_fault_free_result(self, manager):
        """A transient pointer corruption dies with a page fault; recovery
        restores the critical copy and re-executes to the golden outcome."""
        hv = manager.xentry.hv
        activation = act("event_channel_op", 9, 0, domain=2)
        # Golden reference.
        golden = hv.execute(activation)
        golden_outputs = hv.read_outputs(activation)
        hv.reset()
        # Same activation, with a fault that kills the first attempt.
        hv.cpu.schedule_register_flip(4, "r12", 43)
        outcome = manager.protect(activation)
        assert outcome.detected and outcome.recovered
        assert outcome.result is not None
        assert outcome.result.path_hash == golden.path_hash
        assert hv.read_outputs(activation) == golden_outputs
        assert hv.domain(2).is_port_pending(9)

    def test_assertion_detection_recovers(self, manager):
        hv = manager.xentry.hv
        hv.reset()
        activation = act("do_irq", 7)
        hv.cpu.schedule_register_flip(1, "rdi", 44)  # vector out of range
        outcome = manager.protect(activation)
        assert outcome.recovered
        assert "recovered after" in outcome.detail
        # The guest sees the *correct* trap number after recovery.
        assert hv.vcpu(1).trapno == 7

    def test_corrupted_state_rolled_back_before_reexecution(self, manager):
        """If the faulty attempt scribbled on critical structures before
        dying, the restore wipes the scribbles (state equals a clean run)."""
        hv = manager.xentry.hv
        hv.reset()
        activation = act("grant_table_op", 16, 3)
        clean = hv.execute(activation)
        clean_critical = manager.snapshot_critical()
        hv.reset()
        # Fault late in the handler so partial writes have happened.
        hv.cpu.schedule_register_flip(clean.instructions // 2, "rbp", 41)
        outcome = manager.protect(activation)
        assert outcome.recovered
        # Every critical (non-scratch) word matches the clean execution.
        assert manager.snapshot_critical() == clean_critical


class TestFalsePositiveRecovery:
    def test_false_positive_converges_to_original_result(self):
        """Section VI's worry: a false positive triggers needless recovery.
        Re-execution is deterministic, so the guest-visible outcome is
        unchanged — only time is lost."""
        hv = XenHypervisor(seed=34)
        # A detector that flags *everything*: worst-case false positives.
        ds = Dataset.from_samples(
            [(i, 10 * i, i, i, i) for i in range(8)], [1] * 8
        )
        paranoid = VMTransitionDetector.from_classifier(DecisionTreeClassifier().fit(ds))
        manager = RecoveryManager(Xentry(hv, transition_detector=paranoid))
        activation = act("set_timer_op", 500)
        golden = hv.execute(activation)
        golden_outputs = hv.read_outputs(activation)
        hv.reset()
        outcome = manager.protect(activation)
        assert outcome.detected and outcome.recovered  # the FP fired
        assert outcome.result.path_hash == golden.path_hash
        assert hv.read_outputs(activation) == golden_outputs

    def test_statistics_accumulate(self):
        hv = XenHypervisor(seed=35)
        manager = RecoveryManager(Xentry(hv, transition_detector=permissive_detector()))
        for i in range(5):
            manager.protect(act("xen_version", 1, seq=i))
        assert manager.exits_protected == 5
        assert manager.recoveries == 0 and manager.unrecoverable == 0


class TestPersistentFaultUnrecoverable:
    """Regression: a fault that re-arms on every execution (a *permanent*
    error, not a soft one) used to leave the machine in whatever state the
    last failed re-execution corrupted.  Every attempt must be counted, no
    exception may leak, and the manager must hand back a sane machine."""

    def test_persistent_fault_surfaces_unrecoverable(self, manager):
        hv = manager.xentry.hv
        manager.max_reexecutions = 3
        activation = act("event_channel_op", 9, 0, domain=2)
        pristine = manager.snapshot_critical()
        original_execute = hv.execute

        def rearming_execute(activation_, **kwargs):
            # The persistent-fault model: the same bit flips again on every
            # execution, defeating clear_injection between attempts.
            hv.cpu.schedule_register_flip(4, "r12", 43)
            return original_execute(activation_, **kwargs)

        hv.execute = rearming_execute
        try:
            outcome = manager.protect(activation)
        finally:
            hv.execute = original_execute

        assert outcome.detected and not outcome.recovered
        assert outcome.result is None
        assert outcome.attempts == 3
        assert "re-execution failed" in outcome.detail
        assert manager.unrecoverable == 1 and manager.recoveries == 0
        # The machine came back sane: critical state restored, nothing armed.
        assert manager.snapshot_critical() == pristine
        follow_on = manager.protect(act("xen_version", 1, seq=1))
        assert not follow_on.detected and follow_on.result is not None

    def test_recovered_outcome_counts_its_attempts(self, manager):
        hv = manager.xentry.hv
        hv.reset()
        hv.cpu.schedule_register_flip(4, "r12", 43)
        outcome = manager.protect(act("event_channel_op", 9, 0, domain=2))
        assert outcome.recovered and outcome.attempts == 1
