"""VM transition detector, training pipeline, and framework facade."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.errors import CampaignConfigError, NotFittedError
from repro.faults.outcomes import DetectionTechnique, FaultSpec
from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.ml import CORRECT, Dataset, DecisionTreeClassifier, INCORRECT
from repro.workloads import VirtMode, WorkloadGenerator, get_profile
from repro.xentry import (
    ProtectionVerdict,
    TrainingConfig,
    VMTransitionDetector,
    Xentry,
    collect_dataset,
    train_and_evaluate,
)


def tiny_dataset(seed=0) -> Dataset:
    rng = np.random.default_rng(seed)
    vmer = rng.integers(0, 4, 300)
    rt = np.where(rng.random(300) < 0.8, 100 + vmer * 10, 400 + vmer * 10)
    correct = rt < 300
    X = np.column_stack([vmer, rt, rt // 4, rt // 3, rt // 5]).astype(np.int64)
    return Dataset(X, (~correct).astype(np.int8))


class TestVMTransitionDetector:
    def test_from_unfitted_classifier_rejected(self):
        with pytest.raises(NotFittedError):
            VMTransitionDetector.from_classifier(DecisionTreeClassifier())

    def test_flags_and_counts(self):
        ds = tiny_dataset()
        det = VMTransitionDetector.from_classifier(DecisionTreeClassifier().fit(ds))
        flags = [det.flags_incorrect(tuple(row)) for row in ds.X]
        assert det.classifications == len(ds)
        assert det.positives == sum(flags)
        assert 0 < det.mean_comparisons <= det.worst_case_comparisons

    def test_reset_stats(self):
        ds = tiny_dataset()
        det = VMTransitionDetector.from_classifier(DecisionTreeClassifier().fit(ds))
        det.flags_incorrect(tuple(ds.X[0]))
        det.reset_stats()
        assert det.classifications == 0 and det.total_comparisons == 0


class TestTrainingPipeline:
    @pytest.fixture(scope="class")
    def datasets(self):
        cfg = TrainingConfig(
            benchmarks=("postmark", "mcf"), fault_free_runs=120,
            injection_runs=240, seed=13,
        )
        hv = XenHypervisor(seed=13)
        train = collect_dataset(cfg, hypervisor=hv, stream="train")
        test = collect_dataset(cfg, hypervisor=hv, stream="test")
        return train, test

    def test_collects_both_classes(self, datasets):
        train, _ = datasets
        n_correct, n_incorrect = train.class_counts()
        assert n_correct > 0 and n_incorrect > 0

    def test_collection_is_deterministic(self):
        cfg = TrainingConfig(benchmarks=("mcf",), fault_free_runs=40,
                             injection_runs=60, seed=3)
        a = collect_dataset(cfg)
        b = collect_dataset(cfg)
        assert (a.X == b.X).all() and (a.y == b.y).all()

    def test_train_and_test_streams_differ(self):
        cfg = TrainingConfig(benchmarks=("mcf",), fault_free_runs=40,
                             injection_runs=60, seed=3)
        a = collect_dataset(cfg, stream="train")
        b = collect_dataset(cfg, stream="test")
        assert a.X.shape != b.X.shape or not (a.X == b.X).all()

    def test_both_algorithms_train_with_high_accuracy(self, datasets):
        train, test = datasets
        for algo in ("decision_tree", "random_tree"):
            model = train_and_evaluate(train, test, algorithm=algo, seed=1)
            assert model.accuracy > 0.90
            assert model.false_positive_rate < 0.05
            assert algo in model.report()

    def test_unknown_algorithm_rejected(self, datasets):
        train, test = datasets
        with pytest.raises(CampaignConfigError):
            train_and_evaluate(train, test, algorithm="svm")

    def test_config_validation(self):
        with pytest.raises(CampaignConfigError):
            TrainingConfig(fault_free_runs=0)


class AlternatingKillFaultModel:
    """Deterministic fault schedule: odd draws kill, even draws never fire.

    The killing spec (rbp bit 44 at dynamic index 3) derails the globals
    base early enough that every activation dies on a hardware exception
    before VM entry; the inert spec schedules its flip beyond any run
    length, so the faulty run is bit-identical to the golden run (fully
    masked -> a CORRECT sample whose features equal the fault-free stream's
    features at that position).
    """

    registers = ("rbp",)
    bits = (44, 44)

    def __init__(self):
        self.calls = 0

    def sample(self, rng, run_length):
        self.calls += 1
        if self.calls % 2 == 1:
            return FaultSpec(register="rbp", bit=44, dynamic_index=3)
        return FaultSpec(register="rbp", bit=44, dynamic_index=1_000_000_000)


class TestStreamBugfixes:
    """Regressions for the collect_dataset state-stream corruption bugs."""

    N_INJ = 20

    def _config(self):
        return TrainingConfig(
            benchmarks=("mcf",), fault_free_runs=1, injection_runs=self.N_INJ,
            seed=11, fault_model=AlternatingKillFaultModel(),
        )

    def _fault_free_stream(self, config, part, n):
        """Features of executing the named activation stream fault-free."""
        hv = XenHypervisor(n_domains=config.n_domains, seed=config.seed)
        generator = WorkloadGenerator(
            get_profile("mcf"), config.mode,
            seed=rng_mod.derive_seed(config.seed, "train", "mcf"),
            n_domains=config.n_domains,
        )
        hv.reset()
        return [
            hv.execute(a).features
            for a in generator.activations(n, stream=f"train.{part}")
        ]

    def test_exception_killed_injections_do_not_stall_the_stream(self):
        """The golden stream keeps evolving across exception-killed runs.

        Every odd injection dies on a hardware exception (no sample); every
        even injection is fully masked, so its sample features ARE the
        fault-free stream's features at that position.  Before the fix the
        exception path restored the checkpoint without re-executing, so the
        stream froze at the first kill and every later masked sample
        repeated stale state.
        """
        config = self._config()
        ds = collect_dataset(config)
        free = self._fault_free_stream(config, "free", 1)
        inj = self._fault_free_stream(config, "inj", self.N_INJ)
        expected = free + [inj[i] for i in range(1, self.N_INJ, 2)]
        assert [tuple(row) for row in ds.X.tolist()] == [
            tuple(int(v) for v in f) for f in expected
        ]
        assert (ds.y == CORRECT).all()
        # The masked samples must not all repeat one stale state vector.
        masked = ds.X[1:]
        assert len(np.unique(masked, axis=0)) > 1

    def test_every_planned_injection_is_executed(self):
        """The dead `injected >= per_bench_inj` guard is gone: the stream
        drives exactly one injection per planned activation, and killed
        injections still consume their activation (they just yield no
        sample)."""
        config = self._config()
        ds = collect_dataset(config)
        assert config.fault_model.calls == self.N_INJ
        # 1 fault-free sample + one masked sample per even-indexed run;
        # the 10 killed runs contribute activations but no samples.
        assert len(ds) == 1 + self.N_INJ // 2


class TestXentryFramework:
    @pytest.fixture(scope="class")
    def protected(self):
        hv = XenHypervisor(seed=21)
        # A permissive detector (trained on all-correct data) so clean
        # activations stay clean; runtime-detection paths are what we drive.
        ds = Dataset.from_samples([(i, 10 * i, i, i, i) for i in range(8)], [CORRECT] * 8)
        det = VMTransitionDetector.from_classifier(DecisionTreeClassifier().fit(ds))
        return Xentry(hv, transition_detector=det), hv

    def test_clean_activation_permits_vm_entry(self, protected):
        xentry, hv = protected
        hv.reset()
        act = Activation(vmer=REGISTRY.by_name("set_timer_op").vmer, args=(5,), domain_id=1)
        outcome = xentry.protect(act)
        assert outcome.verdict is ProtectionVerdict.CLEAN
        assert outcome.vm_entry_permitted
        assert outcome.features is not None

    def test_hardware_exception_yields_detection(self, protected):
        xentry, hv = protected
        hv.reset()
        act = Activation(vmer=REGISTRY.by_name("mmu_update").vmer, args=(5, 1), domain_id=1)
        hv.cpu.schedule_register_flip(3, "rbp", 44)  # derail the globals base
        outcome = xentry.protect(act)
        assert outcome.verdict is ProtectionVerdict.DETECTED
        assert outcome.detection.technique is DetectionTechnique.HW_EXCEPTION
        assert not outcome.vm_entry_permitted

    def test_assertion_yields_detection(self, protected):
        xentry, hv = protected
        hv.reset()
        act = Activation(vmer=REGISTRY.by_name("do_irq").vmer, args=(99,), domain_id=1)
        # Argument out of the legal 0..31 range: the Listing 1 assertion at
        # handler entry must fire.
        outcome = xentry.protect(act)
        assert outcome.verdict is ProtectionVerdict.DETECTED
        assert outcome.detection.technique is DetectionTechnique.SW_ASSERTION

    def test_detection_counts_aggregate(self, protected):
        xentry, _ = protected
        counts = xentry.detection_counts()
        assert counts[DetectionTechnique.HW_EXCEPTION] >= 1
        assert counts[DetectionTechnique.SW_ASSERTION] >= 1

    def test_protect_without_transition_detector(self):
        hv = XenHypervisor(seed=22)
        xentry = Xentry(hv)  # runtime detection only (the Fig. 7 shaded bars)
        act = Activation(vmer=REGISTRY.by_name("xen_version").vmer, args=(1,), domain_id=1)
        assert xentry.protect(act).verdict is ProtectionVerdict.CLEAN
