"""Feature vectors and runtime detection."""

import pytest

from repro.faults.outcomes import DetectionTechnique
from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.machine import AssertionViolation, HardwareException, Vector
from repro.machine.exceptions import PageFaultKind
from repro.machine.perfcounters import CounterSample
from repro.xentry import FEATURE_NAMES, FeatureVector, RuntimeDetector


class TestFeatureVector:
    def test_table1_feature_order(self):
        assert FEATURE_NAMES == ("VMER", "RT", "BR", "RM", "WM")

    def test_from_sample(self):
        sample = CounterSample(instructions=10, branches=3, loads=2, stores=1)
        fv = FeatureVector.from_sample(7, sample)
        assert fv.as_tuple() == (7, 10, 3, 2, 1)

    def test_from_result_matches_activation(self):
        hv = XenHypervisor(seed=2)
        act = Activation(vmer=REGISTRY.by_name("xen_version").vmer, args=(1,), domain_id=1)
        result = hv.execute(act)
        fv = FeatureVector.from_result(result)
        assert fv.vmer == act.vmer
        assert fv.as_tuple() == result.features

    def test_str_is_readable(self):
        fv = FeatureVector(1, 2, 3, 4, 5)
        assert "VMER=1" in str(fv) and "WM=5" in str(fv)


class TestRuntimeDetector:
    def test_fatal_exception_is_detected(self):
        detector = RuntimeDetector()
        exc = HardwareException(Vector.INVALID_OPCODE, rip=0x100)
        event = detector.on_hardware_exception(exc, vmer=3, at_instruction=12)
        assert event is not None
        assert event.technique is DetectionTechnique.HW_EXCEPTION
        assert detector.detections == 1

    def test_benign_exception_is_filtered(self):
        """The Section III.A parsing step: minor page faults are legal."""
        detector = RuntimeDetector()
        exc = HardwareException(
            Vector.PAGE_FAULT, rip=0x100, address=0x2000, kind=PageFaultKind.MINOR
        )
        assert detector.on_hardware_exception(exc, vmer=1) is None
        assert detector.exceptions_benign == 1
        assert detector.detections == 0

    def test_guest_induced_gp_is_benign(self):
        detector = RuntimeDetector()
        exc = HardwareException(Vector.GENERAL_PROTECTION, rip=0x100)  # no address
        assert detector.on_hardware_exception(exc, vmer=1) is None

    def test_host_gp_with_address_is_fatal(self):
        detector = RuntimeDetector()
        exc = HardwareException(
            Vector.GENERAL_PROTECTION, rip=0x100, address=0x9000_0000_0000_0000
        )
        assert detector.on_hardware_exception(exc, vmer=1) is not None

    def test_assertion_is_always_detected(self):
        detector = RuntimeDetector()
        violation = AssertionViolation("vcpu_idle_invariant", rip=0x40, observed=2)
        event = detector.on_assertion_violation(violation, vmer=9, at_instruction=5)
        assert event.technique is DetectionTechnique.SW_ASSERTION
        assert "vcpu_idle_invariant" in event.detail
        assert detector.assertions_failed == 1

    def test_event_log_accumulates(self):
        detector = RuntimeDetector()
        detector.on_hardware_exception(
            HardwareException(Vector.DIVIDE_ERROR, rip=1), vmer=0
        )
        detector.on_assertion_violation(
            AssertionViolation("x", rip=2, observed=0), vmer=0
        )
        assert [e.technique for e in detector.events] == [
            DetectionTechnique.HW_EXCEPTION,
            DetectionTechnique.SW_ASSERTION,
        ]
