"""Engine-backed collect_dataset: parallelism, resume, chaos, observability.

The acceptance properties of the training-collection tentpole:

* ``jobs=N`` (and a caller-provided hypervisor, and an engine-supervised
  retry history) all merge to a dataset **bit-identical** to the fixed
  serial collection of the same seed;
* a collection killed mid-flight and resumed from its sample journal
  completes with the identical samples — none missing, none doubled;
* quarantined shards abort the collection instead of silently truncating
  the training set.
"""

import json

import pytest

from repro.analysis import dataset_from_journal, sample_journal_progress
from repro.engine import (
    ChaosPolicy,
    EngineTelemetry,
    RetryPolicy,
    SampleJournal,
    ShardFinished,
)
from repro.errors import EngineError, JournalError
from repro.hypervisor import XenHypervisor
from repro.xentry import TrainingConfig, collect_dataset

CONFIG = TrainingConfig(
    benchmarks=("mcf", "postmark"), fault_free_runs=40, injection_runs=60, seed=5
)
# 2 benchmarks x (free, inj) parts.
N_SHARDS = 4


@pytest.fixture(scope="module")
def serial_dataset():
    return collect_dataset(CONFIG)


def assert_identical(a, b):
    assert a.X.shape == b.X.shape
    assert (a.X == b.X).all() and (a.y == b.y).all()


class KillAfter:
    """Telemetry subscriber that kills the collection after N finished shards."""

    def __init__(self, n_shards: int):
        self.remaining = n_shards

    def __call__(self, event):
        if isinstance(event, ShardFinished) and not event.resumed:
            self.remaining -= 1
            if self.remaining == 0:
                raise KeyboardInterrupt


class TestDeterminism:
    def test_process_pool_is_bit_identical_to_serial(self, serial_dataset):
        assert_identical(collect_dataset(CONFIG, jobs=2), serial_dataset)

    def test_caller_hypervisor_is_bit_identical(self, serial_dataset):
        # Shards reset to post-boot state, so a shared, already-used
        # hypervisor changes nothing.
        hv = XenHypervisor(n_domains=CONFIG.n_domains, seed=CONFIG.seed)
        collect_dataset(CONFIG, hypervisor=hv)  # dirty the instance
        assert_identical(collect_dataset(CONFIG, hypervisor=hv), serial_dataset)

    def test_supervised_retries_are_bit_identical(self, serial_dataset):
        # Transient chaos: every shard's first attempt crashes, the retry
        # succeeds, and the merged dataset must not show a trace of it.
        ds = collect_dataset(
            CONFIG,
            chaos=ChaosPolicy(seed=3, crash_rate=1.0, only_attempt=0),
            retry=RetryPolicy(max_retries=1, backoff_base=0.0, seed=3),
        )
        assert_identical(ds, serial_dataset)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(EngineError, match="jobs"):
            collect_dataset(CONFIG, jobs=0)


class TestResume:
    def test_killed_collection_resumes_without_dup_or_loss(
        self, tmp_path, serial_dataset
    ):
        journal = tmp_path / "samples.jsonl"
        telemetry = EngineTelemetry()
        telemetry.subscribe(KillAfter(2))
        with pytest.raises(KeyboardInterrupt):
            collect_dataset(CONFIG, journal_path=journal, telemetry=telemetry)
        state = SampleJournal.read(journal)
        assert len(state.completed_shards) == 2
        assert 0 < state.completed_trials < len(serial_dataset)

        ds = collect_dataset(CONFIG, journal_path=journal, resume=True)
        assert_identical(ds, serial_dataset)  # nothing missing...
        final = SampleJournal.read(journal)
        seen = [run for items in final.completed.values() for run, _ in items]
        assert len(seen) == len(set(seen)) == len(serial_dataset)  # ...none doubled

    def test_resume_skips_completed_work(self, tmp_path, serial_dataset):
        journal = tmp_path / "samples.jsonl"
        collect_dataset(CONFIG, journal_path=journal)
        telemetry = EngineTelemetry()
        ds = collect_dataset(
            CONFIG, journal_path=journal, resume=True, telemetry=telemetry
        )
        assert_identical(ds, serial_dataset)
        assert telemetry.executed_trials == 0
        assert all(event.resumed for event in telemetry.shard_log)

    def test_journal_collision_requires_resume(self, tmp_path):
        journal = tmp_path / "samples.jsonl"
        collect_dataset(CONFIG, journal_path=journal)
        with pytest.raises(JournalError, match="resume"):
            collect_dataset(CONFIG, journal_path=journal)

    def test_resume_rejects_foreign_journal(self, tmp_path):
        journal = tmp_path / "samples.jsonl"
        collect_dataset(CONFIG, journal_path=journal)
        other = TrainingConfig(
            benchmarks=("mcf", "postmark"), fault_free_runs=40,
            injection_runs=60, seed=6,
        )
        with pytest.raises(JournalError):
            collect_dataset(other, journal_path=journal, resume=True)

    def test_streams_of_one_config_need_separate_journals(self, tmp_path):
        # The digest covers the stream name: a test-stream resume against a
        # train-stream journal must be refused, not silently merged.
        journal = tmp_path / "samples.jsonl"
        collect_dataset(CONFIG, journal_path=journal, stream="train")
        with pytest.raises(JournalError):
            collect_dataset(CONFIG, journal_path=journal, stream="test", resume=True)

    def test_resume_without_journal_path(self):
        with pytest.raises(EngineError, match="journal_path"):
            collect_dataset(CONFIG, resume=True)


class TestQuarantine:
    def test_quarantined_shards_abort_the_collection(self, tmp_path):
        with pytest.raises(EngineError, match="quarantine"):
            collect_dataset(
                CONFIG,
                journal_path=tmp_path / "samples.jsonl",
                chaos=ChaosPolicy(seed=1, crash_rate=1.0),
                retry=RetryPolicy(max_retries=0, seed=1),
            )


class TestObservability:
    def test_manifest_reports_label_balance(self, tmp_path, serial_dataset):
        journal = tmp_path / "samples.jsonl"
        collect_dataset(CONFIG, journal_path=journal)
        manifest = json.loads(
            (tmp_path / "samples.jsonl.manifest.json").read_text()
        )
        assert manifest["done_shards"] == N_SHARDS
        labels = manifest["outcomes"]["labels"]
        assert sum(labels.values()) == len(serial_dataset)
        assert labels["correct"] > 0 and labels["incorrect"] > 0

    def test_analysis_rebuilds_dataset_from_journal(self, tmp_path, serial_dataset):
        journal = tmp_path / "samples.jsonl"
        collect_dataset(CONFIG, journal_path=journal)
        assert_identical(dataset_from_journal(journal), serial_dataset)

    def test_sample_journal_progress(self, tmp_path, serial_dataset):
        journal = tmp_path / "samples.jsonl"
        collect_dataset(CONFIG, journal_path=journal)
        progress = sample_journal_progress(journal)
        assert progress["completed_shards"] == list(range(N_SHARDS))
        assert progress["fraction_shards_done"] == 1.0
        assert progress["done_samples"] == len(serial_dataset)
        # Killed injections consume activations without yielding samples.
        assert progress["done_samples"] <= progress["total_runs"]
        n_correct, n_incorrect = serial_dataset.class_counts()
        assert progress["labels"] == {
            "correct": n_correct, "incorrect": n_incorrect,
        }

    def test_progress_on_missing_journal(self, tmp_path):
        with pytest.raises(JournalError, match="no sample journal"):
            sample_journal_progress(tmp_path / "absent.jsonl")
