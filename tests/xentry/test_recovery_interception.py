"""Recovery-cost model (Fig. 11) and interception cost accounting."""

import pytest

from repro.errors import CampaignConfigError
from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.workloads import VirtMode, get_profile
from repro.xentry import (
    DetectionCostModel,
    PAPER_COPY_NS,
    PAPER_FALSE_POSITIVE_RATE,
    RecoveryCostModel,
    ShimInterceptor,
    estimate_recovery_overhead,
)


class TestDetectionCostModel:
    def test_transition_cost_exceeds_runtime_cost(self):
        model = DetectionCostModel()
        assert model.transition_ns(10) > model.runtime_ns(2)

    def test_cost_scales_with_tree_depth(self):
        model = DetectionCostModel()
        assert model.transition_ns(20) > model.transition_ns(5)

    def test_per_activation_composition(self):
        model = DetectionCostModel()
        full = model.per_activation_ns(tree_comparisons=8, assertion_checks=2)
        runtime = model.per_activation_ns(
            tree_comparisons=8, assertion_checks=2, transition_enabled=False
        )
        assert full == pytest.approx(runtime + model.transition_ns(8))

    def test_counter_costs_are_msr_traffic(self):
        model = DetectionCostModel()
        assert model.counter_arm_ns == 4 * model.wrmsr_ns
        assert model.counter_collect_ns == 4 * model.rdmsr_ns + model.wrmsr_ns


class TestShimInterceptor:
    def test_intercepts_every_transition(self):
        hv = XenHypervisor(seed=5)
        shim = ShimInterceptor()
        act = Activation(vmer=REGISTRY.by_name("xen_version").vmer, args=(1,), domain_id=1)
        for i in range(5):
            hv.execute(Activation(vmer=act.vmer, args=(1,), domain_id=1, seq=i),
                       interceptor=shim)
        assert shim.vm_exits == 5 and shim.vm_entries == 5
        assert shim.modeled_ns > 0
        assert shim.last_features is not None

    def test_disabled_transition_costs_nothing(self):
        hv = XenHypervisor(seed=5)
        shim = ShimInterceptor(transition_enabled=False)
        act = Activation(vmer=0, args=(1,), domain_id=1)
        hv.execute(act, interceptor=shim)
        assert shim.modeled_ns == 0.0


class TestRecoveryModel:
    def test_paper_constants(self):
        model = RecoveryCostModel()
        assert model.copy_ns == PAPER_COPY_NS == 1_900.0
        assert model.false_positive_rate == PAPER_FALSE_POSITIVE_RATE == 0.007

    def test_validation(self):
        with pytest.raises(CampaignConfigError):
            RecoveryCostModel(false_positive_rate=1.5)
        with pytest.raises(CampaignConfigError):
            RecoveryCostModel(copy_ns=-1)

    def test_per_second_overhead_composition(self):
        model = RecoveryCostModel(copy_ns=1000, handler_ns=500)
        # 10k activations with 70 false positives.
        ns = model.per_second_overhead_ns(10_000, 70)
        assert ns == pytest.approx(10_000 * 1000 + 70 * 1500)

    def test_study_shape_matches_fig11(self):
        """postmark worst, mcf/bzip2 low, spread across repetitions tiny."""
        studies = {
            name: estimate_recovery_overhead(get_profile(name), seed=3)
            for name in ("mcf", "bzip2", "postmark")
        }
        assert studies["postmark"].mean > studies["mcf"].mean
        assert studies["postmark"].mean > studies["bzip2"].mean
        for study in studies.values():
            assert 0.0 < study.mean < 0.20
            # Paper: "the difference between the maximum and minimum
            # overheads are less than 0.03%".
            assert study.spread < 0.0003

    def test_study_is_deterministic(self):
        a = estimate_recovery_overhead(get_profile("x264"), seed=9)
        b = estimate_recovery_overhead(get_profile("x264"), seed=9)
        assert (a.overheads == b.overheads).all()

    def test_zero_fp_rate_leaves_only_copy_cost(self):
        model = RecoveryCostModel(false_positive_rate=0.0)
        study = estimate_recovery_overhead(get_profile("mcf"), model=model, seed=1)
        assert study.spread == 0.0  # no randomness left
