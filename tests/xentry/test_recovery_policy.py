"""Recovery campaigns: ladder semantics, determinism, persistence, reporting.

The tentpole contract under test:

* recovery decisions are pure in ``(seed, trial, attempt)`` — same-seed
  campaigns are bit-identical, with and without twin batching;
* restoring any golden-prefix rung and replaying is bit-identical to the
  uninterrupted golden run (the property micro-reboot recovery rides on);
* records round-trip through the JSONL codec, and pre-recovery journals
  (no ``recovery`` key) still load;
* the escalation ladder is bounded and surfaces ``unrecoverable`` instead
  of leaking exceptions when every rung's budget is spent.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import coverage_by_technique, summarize_recovery
from repro.engine import config_digest
from repro.errors import CampaignConfigError
from repro.faults import CampaignConfig, FaultInjectionCampaign, capture_golden
from repro.hypervisor import REGISTRY, Activation, XenHypervisor
from repro.persist import load_records, save_records
from repro.xentry import (
    LADDER_POLICY,
    POLICIES,
    RecoveryAction,
    RecoveryPolicy,
    policy_from_name,
)

BENCHMARKS = ("mcf", "postmark")


def run_campaign(
    *,
    recover: str | None,
    n: int = 120,
    seed: int = 3,
    hazard: float = 0.0,
    twin_batch: bool = True,
):
    config = CampaignConfig(
        benchmarks=BENCHMARKS,
        n_injections=n,
        seed=seed,
        recover=recover,
        recovery_hazard=hazard,
        twin_batch=twin_batch,
    )
    return FaultInjectionCampaign(config).run()


@pytest.fixture(scope="module")
def ladder_result():
    return run_campaign(recover="ladder")


class TestPolicyDefinitions:
    def test_registry_names_match(self):
        assert set(POLICIES) == {"reexecute", "microreboot", "ladder"}
        for name, policy in POLICIES.items():
            assert policy.name == name
            assert policy_from_name(name) is policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(CampaignConfigError, match="unknown recovery policy"):
            policy_from_name("reboot-the-planet")
        with pytest.raises(CampaignConfigError):
            CampaignConfig(n_injections=10, recover="nope")

    def test_rungs_validated(self):
        with pytest.raises(CampaignConfigError, match="at least one rung"):
            RecoveryPolicy("empty", ())
        with pytest.raises(CampaignConfigError, match="budget"):
            RecoveryPolicy("zero", ((RecoveryAction.REEXECUTE, 0),))
        with pytest.raises(CampaignConfigError, match="outcome, not a rung"):
            RecoveryPolicy("bad", ((RecoveryAction.UNRECOVERABLE, 1),))

    def test_escalation_flattens_budgets(self):
        assert LADDER_POLICY.escalation() == (
            RecoveryAction.REEXECUTE,
            RecoveryAction.MICROREBOOT,
            RecoveryAction.MICROREBOOT,
            RecoveryAction.QUARANTINE_VM,
        )

    def test_hazard_validated(self):
        with pytest.raises(CampaignConfigError, match="recovery_hazard"):
            CampaignConfig(n_injections=10, recover="ladder", recovery_hazard=1.0)


class TestRungReplayProperty:
    """Micro-reboot's load-bearing property: every golden-prefix rung,
    restored and resumed, lands exactly where the uninterrupted run did."""

    @given(
        reason=st.sampled_from(
            ["mmu_update", "grant_table_op", "sched_op", "page_fault", "memory_op"]
        ),
        arg=st.integers(min_value=2, max_value=9),
    )
    @settings(max_examples=10, deadline=None)
    def test_every_rung_replays_bit_identical(self, reason, arg):
        hv = XenHypervisor(seed=21)
        activation = Activation(
            vmer=REGISTRY.by_name(reason).vmer, args=(arg, 1), domain_id=1, seq=0
        )
        golden = capture_golden(hv, activation, (), ladder_interval=24)
        heap = hv.memory.region("hypervisor_heap")
        assert golden.ladder, "ladder_interval > 0 must produce rungs"
        for rung in golden.ladder:
            hv.restore_machine(rung)
            result = hv.resume_execution(activation)
            assert result.instructions == golden.result.instructions
            assert result.path_hash == golden.result.path_hash
            assert result.features == golden.result.features
            assert result.tsc_end == golden.result.tsc_end
            assert hv.memory.diff_region(heap, golden.heap_image) == []
            assert hv.read_outputs(activation) == golden.outputs


class TestCampaignRecovery:
    def test_every_detected_trial_carries_a_record(self, ladder_result):
        for record in ladder_result.records:
            if record.detected:
                assert record.recovery is not None
                assert record.recovery.policy == "ladder"
                assert record.recovery.attempts >= 1
            else:
                assert record.recovery is None

    def test_recovered_means_measured_clean(self, ladder_result):
        """Success is *defined* by an empty golden diff, so ``recovered``
        and ``clean`` must agree exactly — no trusted-but-unverified wins."""
        for record in ladder_result.records:
            rec = record.recovery
            if rec is None:
                continue
            if rec.recovered:
                assert rec.clean
                assert rec.state_digest == rec.golden_digest
            assert rec.downtime_instructions >= 0

    def test_transient_faults_recover_cleanly(self, ladder_result):
        """The acceptance bar: >= 90% of detected transient single-bit
        faults recover with zero post-recovery divergence."""
        summary = summarize_recovery(ladder_result.records)
        assert summary.trials > 0
        assert summary.clean_rate >= 0.90

    def test_same_seed_rerun_is_bit_identical(self):
        a = run_campaign(recover="ladder", n=60, seed=9)
        b = run_campaign(recover="ladder", n=60, seed=9)
        assert a.records == b.records

    def test_twin_batch_invariance_holds_with_recovery(self):
        batched = run_campaign(recover="microreboot", n=60, seed=9)
        per_trial = run_campaign(recover="microreboot", n=60, seed=9,
                                 twin_batch=False)
        assert batched.records == per_trial.records

    def test_detection_only_records_unchanged_by_feature(self):
        """recover=None must reproduce the pre-recovery campaign exactly."""
        plain = run_campaign(recover=None, n=60, seed=9)
        assert all(r.recovery is None for r in plain.records)

    def test_hazard_escalates_deterministically(self):
        """A high second-error hazard forces the ladder past re-execution;
        outcomes stay pure in (seed, trial, attempt)."""
        a = run_campaign(recover="ladder", n=120, seed=3, hazard=0.6)
        b = run_campaign(recover="ladder", n=120, seed=3, hazard=0.6)
        assert a.records == b.records
        recs = [r.recovery for r in a.records if r.recovery is not None]
        assert any(rec.attempts > 1 for rec in recs)
        assert any(rec.action == "microreboot" for rec in recs)
        # The ladder is bounded by its budgets.
        limit = len(LADDER_POLICY.escalation())
        assert all(rec.attempts <= limit for rec in recs)

    def test_reexecute_alone_can_exhaust_under_hazard(self):
        result = run_campaign(recover="reexecute", n=120, seed=9, hazard=0.8)
        recs = [r.recovery for r in result.records if r.recovery is not None]
        limit = len(POLICIES["reexecute"].escalation())
        assert all(rec.attempts <= limit for rec in recs)
        unrecovered = [rec for rec in recs if not rec.recovered]
        assert unrecovered, "0.8 hazard should defeat a 2-attempt budget sometimes"
        assert all(rec.action == "unrecoverable" for rec in unrecovered)

    def test_microreboot_is_structurally_divergence_free(self):
        result = run_campaign(recover="microreboot", n=60, seed=7)
        recs = [r.recovery for r in result.records if r.recovery is not None]
        assert recs
        for rec in recs:
            assert rec.recovered and rec.divergent_words == 0


class TestPersistence:
    def test_records_roundtrip_with_recovery(self, ladder_result, tmp_path):
        path = tmp_path / "records.jsonl"
        save_records(ladder_result.records, path)
        assert load_records(path) == ladder_result.records

    def test_detection_only_stream_has_no_recovery_key(self, tmp_path):
        result = run_campaign(recover=None, n=30, seed=4)
        path = tmp_path / "plain.jsonl"
        save_records(result.records, path)
        lines = path.read_text().splitlines()[1:]  # skip header
        assert lines
        assert all("recovery" not in json.loads(line) for line in lines)

    def test_pre_recovery_journals_still_load(self, ladder_result, tmp_path):
        """Rows written before the recovery field existed (no ``recovery``
        key) must load with ``recovery=None``."""
        path = tmp_path / "old.jsonl"
        save_records(ladder_result.records, path)
        lines = path.read_text().splitlines()
        stripped = [lines[0]]
        for line in lines[1:]:
            row = json.loads(line)
            row.pop("recovery", None)
            stripped.append(json.dumps(row))
        path.write_text("\n".join(stripped) + "\n")
        loaded = load_records(path)
        assert len(loaded) == len(ladder_result.records)
        assert all(r.recovery is None for r in loaded)


class TestReporting:
    def test_summary_folds_the_stream(self, ladder_result):
        summary = summarize_recovery(ladder_result.records)
        assert summary.trials == sum(
            1 for r in ladder_result.records if r.recovery is not None
        )
        assert summary.recovered == summary.clean
        assert summary.downtime_p50 <= summary.downtime_p90 <= summary.downtime_max
        assert summary.policies == {"ladder": summary.trials}
        assert any("recovered:" in line for line in summary.lines())

    def test_coverage_gains_recovered_column(self, ladder_result):
        cov = coverage_by_technique(ladder_result.records)
        assert cov.recovered > 0
        assert "recovered=" in cov.row("mcf")

    def test_detection_only_coverage_row_unchanged(self):
        result = run_campaign(recover=None, n=30, seed=4)
        cov = coverage_by_technique(result.records)
        assert cov.recovered == 0
        assert "recovered=" not in cov.row("mcf")


class TestEngineDigest:
    def test_digest_unchanged_when_recovery_off(self):
        """Every pre-recovery journal digest must stay valid."""
        base = CampaignConfig(n_injections=100, seed=1)
        again = CampaignConfig(n_injections=100, seed=1, recover=None)
        assert config_digest(base) == config_digest(again)

    def test_digest_changes_when_recovery_armed(self):
        base = CampaignConfig(n_injections=100, seed=1)
        armed = CampaignConfig(n_injections=100, seed=1, recover="ladder")
        hazarded = CampaignConfig(
            n_injections=100, seed=1, recover="ladder", recovery_hazard=0.5
        )
        digests = {config_digest(base), config_digest(armed), config_digest(hazarded)}
        assert len(digests) == 3
