"""Workload profiles and activation generation."""

import numpy as np
import pytest

from repro.errors import CampaignConfigError
from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.workloads import (
    BENCHMARK_NAMES,
    BENCHMARKS,
    RateDistribution,
    VirtMode,
    WorkloadClass,
    WorkloadGenerator,
    get_profile,
)


class TestSuite:
    def test_paper_benchmarks_present(self):
        assert set(BENCHMARK_NAMES) == {
            "mcf", "bzip2", "freqmine", "canneal", "x264", "postmark",
        }

    def test_class_assignments_match_section5(self):
        assert get_profile("mcf").klass is WorkloadClass.MEMORY
        assert get_profile("bzip2").klass is WorkloadClass.CPU
        assert get_profile("canneal").klass is WorkloadClass.CPU
        assert get_profile("postmark").klass is WorkloadClass.IO
        assert get_profile("freqmine").klass is WorkloadClass.IO
        assert get_profile("x264").klass is WorkloadClass.IO

    def test_unknown_profile_rejected(self):
        with pytest.raises(CampaignConfigError):
            get_profile("linpack")

    def test_pv_rates_exceed_hvm_rates(self):
        """Section II.B: PV has generally higher activation frequencies."""
        for profile in BENCHMARKS:
            assert profile.pv_rate.median > profile.hvm_rate.median

    def test_rate_calibration_bands(self):
        """PV medians within the 5k-100k band; HVM within 2k-10k."""
        for profile in BENCHMARKS:
            assert 5_000 <= profile.pv_rate.median <= 100_000
            assert 2_000 <= profile.hvm_rate.median <= 10_000

    def test_freqmine_tail_reaches_650k(self):
        """The paper's peak: ~650,000/s while freqmine is running."""
        gen = WorkloadGenerator(get_profile("freqmine"), VirtMode.PV, seed=3)
        rates = gen.rate_per_second(2_000)
        assert rates.max() > 300_000  # heavy tail reaching the paper's peak
        assert np.median(rates) < 100_000

    def test_postmark_blocks_most(self):
        assert get_profile("postmark").blocking_fraction == max(
            p.blocking_fraction for p in BENCHMARKS
        )


class TestRateDistribution:
    def test_sampling_respects_floor(self):
        dist = RateDistribution(median=200, sigma=2.0, floor=100)
        rng = np.random.default_rng(0)
        assert (dist.sample(rng, 500) >= 100).all()

    def test_median_is_approximately_right(self):
        dist = RateDistribution(median=10_000, sigma=0.5)
        rng = np.random.default_rng(1)
        samples = dist.sample(rng, 20_000)
        assert np.median(samples) == pytest.approx(10_000, rel=0.05)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(CampaignConfigError):
            RateDistribution(median=0, sigma=0.5)
        with pytest.raises(CampaignConfigError):
            RateDistribution(median=10, sigma=-1)


class TestGenerator:
    def test_streams_are_deterministic(self):
        gen1 = WorkloadGenerator(get_profile("mcf"), VirtMode.PV, seed=9)
        gen2 = WorkloadGenerator(get_profile("mcf"), VirtMode.PV, seed=9)
        assert gen1.activations(50) == gen2.activations(50)
        assert (gen1.rate_per_second(10) == gen2.rate_per_second(10)).all()

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(get_profile("mcf"), VirtMode.PV, seed=1).activations(50)
        b = WorkloadGenerator(get_profile("mcf"), VirtMode.PV, seed=2).activations(50)
        assert a != b

    def test_pv_streams_avoid_hvm_reasons(self):
        gen = WorkloadGenerator(get_profile("postmark"), VirtMode.PV, seed=5)
        hvm_vmers = {r.vmer for r in REGISTRY if r.name.startswith("hvm_")}
        assert all(a.vmer not in hvm_vmers for a in gen.activations(300))

    def test_hvm_streams_avoid_pv_exception_path(self):
        gen = WorkloadGenerator(get_profile("postmark"), VirtMode.HVM, seed=5)
        exc_vmers = {r.vmer for r in REGISTRY if r.category.value == "exception"}
        assert all(a.vmer not in exc_vmers for a in gen.activations(300))

    def test_mix_is_respected(self):
        """postmark is I/O bound: do_irq should dominate apic_timer."""
        gen = WorkloadGenerator(get_profile("postmark"), VirtMode.PV, seed=7)
        acts = gen.activations(2_000)
        irq = REGISTRY.by_name("do_irq").vmer
        timer = REGISTRY.by_name("apic_timer").vmer
        n_irq = sum(a.vmer == irq for a in acts)
        n_timer = sum(a.vmer == timer for a in acts)
        assert n_irq > 5 * n_timer

    def test_reason_probability_sums_to_one(self):
        gen = WorkloadGenerator(get_profile("x264"), VirtMode.PV, seed=1)
        total = sum(gen.reason_probability(r.name) for r in REGISTRY.pv_reasons)
        assert total == pytest.approx(1.0)

    def test_args_respect_reason_ranges(self):
        gen = WorkloadGenerator(get_profile("mcf"), VirtMode.PV, seed=11)
        for act in gen.activations(500):
            reason = REGISTRY.by_vmer(act.vmer)
            for value, (lo, hi) in zip(act.args, reason.arg_ranges):
                assert lo <= value <= hi

    def test_domains_are_valid_and_include_dom0_for_io(self):
        gen = WorkloadGenerator(get_profile("postmark"), VirtMode.PV, seed=13, n_domains=3)
        acts = gen.activations(500)
        domains = {a.domain_id for a in acts}
        assert domains <= {0, 1, 2}
        assert 0 in domains  # Dom0 backend work

    def test_generated_activations_run_fault_free(self):
        """Every generated activation must execute cleanly on the hypervisor."""
        hv = XenHypervisor(seed=3)
        for mode in VirtMode:
            gen = WorkloadGenerator(get_profile("postmark"), mode, seed=3)
            for act in gen.activations(60):
                res = hv.execute(act)
                assert res.instructions > 0

    def test_too_few_domains_rejected(self):
        with pytest.raises(CampaignConfigError):
            WorkloadGenerator(get_profile("mcf"), VirtMode.PV, n_domains=1)
