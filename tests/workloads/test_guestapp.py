"""Executable guest-application model and its agreement with the rule-based
consequence classifier."""

import pytest

from repro.faults import FaultSpec, capture_golden, run_trial
from repro.faults.outcomes import FailureClass
from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.machine import AssertionViolation, HardwareException
from repro.errors import SimulationLimitExceeded
from repro.workloads.guestapp import AppOutcome, GuestApplication


@pytest.fixture()
def hv() -> XenHypervisor:
    return XenHypervisor(seed=51)


def act(name: str, *args: int, domain=1, seq=0) -> Activation:
    return Activation(vmer=REGISTRY.by_name(name).vmer, args=args,
                      domain_id=domain, seq=seq)


class TestCleanConsumption:
    def test_fault_free_step_is_ok(self, hv):
        hv.execute(act("hvm_cpuid", 1))
        app = GuestApplication()
        run = app.step(hv.domain(1))
        assert run.outcome is AppOutcome.OK
        assert run.digest != 0

    def test_identical_state_identical_digest(self, hv):
        hv.execute(act("xen_version", 2))
        a = GuestApplication().step(hv.domain(1))
        b = GuestApplication().step(hv.domain(1))
        assert a.outcome is b.outcome is AppOutcome.OK
        assert a.digest == b.digest

    def test_different_delivered_values_different_digest(self, hv):
        hv.reset()
        hv.execute(act("xen_version", 2))
        a = GuestApplication().step(hv.domain(1))
        hv.reset()
        hv.execute(act("xen_version", 3, seq=1))
        b = GuestApplication().step(hv.domain(1))
        assert a.digest != b.digest


class TestObservableFailures:
    def test_bad_trap_number_panics_the_kernel(self, hv):
        hv.reset()
        hv.execute(act("do_irq", 5))
        vcpu = hv.vcpu(1)
        vcpu.set_reg(0, 0)  # keep registers harmless
        hv.memory.write_u64(hv.layout.domains[1].vcpus[0].trapno.address, 0x4001)
        run = GuestApplication().step(hv.domain(1))
        assert run.outcome is AppOutcome.KERNEL_PANIC

    def test_wild_pointer_segfaults(self, hv):
        hv.reset()
        hv.execute(act("hvm_cpuid", 1))
        hv.vcpu(1).set_reg(2, 0x0000_7F12_3456_0000)  # outside the app heap
        run = GuestApplication().step(hv.domain(1))
        assert run.outcome is AppOutcome.SEGFAULT

    def test_pointer_inside_app_heap_is_fine(self, hv):
        hv.reset()
        hv.execute(act("hvm_cpuid", 1))
        app = GuestApplication()
        hv.vcpu(1).set_reg(2, app.heap_base + 64)
        assert app.step(hv.domain(1)).outcome is AppOutcome.OK

    def test_backwards_clock_misbehaves(self, hv):
        hv.reset()
        hv.execute(act("set_timer_op", 100, seq=50))
        app = GuestApplication()
        first = app.step(hv.domain(1))
        assert first.outcome is AppOutcome.OK
        # Deliver an earlier time: the app notices.
        time_addr = hv.layout.domains[1].vcpus[0].time.address
        hv.memory.write_u64(time_addr, 1)
        assert app.step(hv.domain(1)).outcome is AppOutcome.MISBEHAVED

    def test_corrupted_cpuid_result_is_sdc(self, hv):
        """The Section II.A example observed end-to-end: the app completes
        normally with a wrong result."""
        hv.reset()
        activation = act("hvm_cpuid", 1)
        hv.execute(activation)
        golden = GuestApplication().step(hv.domain(1))
        hv.reset()
        hv.execute(activation)
        vcpu = hv.vcpu(1)
        vcpu.set_reg(0, vcpu.reg(0) ^ (1 << 9))  # one flipped feature bit
        faulty = GuestApplication().step(hv.domain(1))
        assert faulty.is_sdc_against(golden)


class TestAgreementWithRuleClassifier:
    def test_app_model_confirms_sdc_classifications(self, hv):
        """Faults the rule classifier calls APP_SDC must show up as digest
        differences (or worse) in the executable model."""
        hv.reset()
        activation = act("hvm_cpuid", 2, domain=1)
        golden = capture_golden(hv, activation)
        hv.restore(golden.checkpoint)
        hv.execute(activation)
        golden_app = GuestApplication().step(hv.domain(1))

        confirmed = examined = 0
        for idx in range(golden.result.instructions):
            for bit in (2, 9, 30):
                record = run_trial(hv, activation, FaultSpec("rbx", bit, idx),
                                   golden=golden)
                if record.failure_class is not FailureClass.APP_SDC:
                    continue
                examined += 1
                # Re-execute the faulty run and let the app consume it.
                hv.restore(golden.checkpoint)
                hv.cpu.schedule_register_flip(idx, "rbx", bit)
                try:
                    hv.execute(activation)
                except (HardwareException, AssertionViolation, SimulationLimitExceeded):
                    continue
                app_run = GuestApplication().step(hv.domain(1))
                if app_run.is_sdc_against(golden_app) or app_run.outcome is not AppOutcome.OK:
                    confirmed += 1
        assert examined > 0
        assert confirmed / examined > 0.8
