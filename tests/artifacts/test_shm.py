"""Shared-memory distribution: segment format, lifecycle, and leak hygiene.

Two layers of contract.  In-process: :func:`build_segment` /
:class:`SegmentView` round-trip digests to zero-copy blob views, ``attach``
never raises on a vanished or malformed name, and the publisher's
terminal-state release keeps one segment alive across retried attempts.
End-to-end: a pooled warm campaign serves shards through ``/dev/shm`` with
bit-identical records, and **no segment name survives** the engine — after a
normal exit, after pool rebuilds forced by hard-crash chaos, and after
``shm_lost`` chaos unlinks segments mid-shard.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.artifacts import runtime, shm
from repro.artifacts.shm import (
    SEGMENT_MAGIC,
    SegmentPublisher,
    SegmentView,
    attach,
    build_segment,
    detach_all,
    unlink_segment,
)
from repro.engine import CampaignEngine, ChaosPolicy, EngineTelemetry
from repro.faults import CampaignConfig, FaultInjectionCampaign

BLOBS = {"aa" * 16: b"alpha-artifact", "bb" * 16: b"x" * 13, "cc" * 16: b""}

CONFIG = CampaignConfig(
    n_injections=24, seed=9, benchmarks=("mcf", "postmark"), ladder_interval=16
)


def shm_names() -> list[str]:
    """Live golden segments in this machine's /dev/shm."""
    return sorted(p.name for p in Path("/dev/shm").glob("xgold-*"))


@pytest.fixture(autouse=True)
def clean_slate():
    runtime.reset_stats()
    detach_all()
    yield
    detach_all()
    runtime.reset_stats()


class TestSegmentFormat:
    def test_round_trip_every_blob(self):
        publisher = SegmentPublisher()
        name = publisher.prepare(0, BLOBS)
        try:
            view = attach(name)
            assert view is not None
            for digest, blob in BLOBS.items():
                got = view.get(digest)
                assert got is not None and bytes(got) == blob
                got.release()  # a held view would pin the mapping at detach
            assert view.get("dd" * 16) is None
        finally:
            detach_all()
            publisher.close_all()

    def test_blobs_are_8_aligned_views(self):
        image = build_segment(BLOBS)
        assert image.startswith(SEGMENT_MAGIC)
        header = len(SEGMENT_MAGIC) + 8
        toc_len = int.from_bytes(image[len(SEGMENT_MAGIC) : header], "little")
        extents = json.loads(image[header : header + toc_len])
        assert extents.keys() == BLOBS.keys()
        for offset, _length in extents.values():
            assert offset % 8 == 0

    def test_get_is_bounds_checked(self):
        # A TOC extent pointing past the mapping (torn publish, hostile
        # segment) yields None, not an IndexError or an over-read.
        image = bytearray(build_segment({"aa" * 16: b"tiny"}))

        class FakeSegment:
            buf = memoryview(bytes(image))

        view = SegmentView(FakeSegment())
        view.extents["aa" * 16] = [0, 1 << 30]
        assert view.get("aa" * 16) is None

    def test_malformed_magic_rejected(self):
        class FakeSegment:
            buf = memoryview(b"WRONGMG\x01" + b"\x00" * 64)

            def close(self):
                pass

        with pytest.raises(ValueError):
            SegmentView(FakeSegment())


class TestAttach:
    def test_attach_missing_name_is_none(self):
        assert attach("xgold-does-not-exist") is None

    def test_attach_is_cached_per_name(self):
        publisher = SegmentPublisher()
        name = publisher.prepare(0, BLOBS)
        try:
            assert attach(name) is attach(name)
        finally:
            detach_all()
            publisher.close_all()

    def test_attach_survives_parent_unlink(self):
        # The parent unlinks a finished shard's name while workers still
        # hold mappings: POSIX keeps the pages alive until the last close.
        publisher = SegmentPublisher()
        name = publisher.prepare(0, BLOBS)
        view = attach(name)
        publisher.finished(0)
        assert name not in shm_names()
        assert bytes(view.get("aa" * 16)) == BLOBS["aa" * 16]
        detach_all()


class TestPublisher:
    def test_prepare_empty_is_none(self):
        assert SegmentPublisher().prepare(0, {}) is None

    def test_prepare_is_idempotent_per_shard(self):
        publisher = SegmentPublisher()
        try:
            name = publisher.prepare(3, BLOBS)
            assert publisher.prepare(3, BLOBS) == name
            assert publisher.stats["shm_segments"] == 1
            other = publisher.prepare(4, BLOBS)
            assert other != name
        finally:
            publisher.close_all()
        assert shm_names() == []

    def test_finished_unlinks_exactly_that_shard(self):
        publisher = SegmentPublisher()
        a = publisher.prepare(0, BLOBS)
        b = publisher.prepare(1, BLOBS)
        publisher.finished(0)
        names = shm_names()
        assert a not in names and b in names
        publisher.finished(1)
        publisher.finished(1)  # second call is a no-op
        assert shm_names() == []

    def test_close_all_after_chaos_unlink_is_silent(self):
        # shm_lost removed the name already; teardown must neither raise
        # nor double-count.
        publisher = SegmentPublisher()
        name = publisher.prepare(0, BLOBS)
        assert unlink_segment(name) is True
        assert unlink_segment(name) is False
        publisher.close_all()
        assert shm_names() == []


class TestPooledCampaigns:
    """End-to-end /dev/shm hygiene over the real engine."""

    def run_engine(self, config, *, jobs=2, chaos=None):
        telemetry = EngineTelemetry()
        result = CampaignEngine(
            config, jobs=jobs, n_shards=4, telemetry=telemetry, chaos=chaos
        ).run()
        return result, telemetry

    @pytest.fixture()
    def warm(self, tmp_path):
        """Baseline records + a store warmed by a serial cold run."""
        baseline = FaultInjectionCampaign(CONFIG).run()
        config = dataclasses.replace(CONFIG, artifacts=str(tmp_path / "cache"))
        assert FaultInjectionCampaign(config).run().records == baseline.records
        runtime.reset_stats()
        return baseline, config

    def test_warm_pool_serves_from_shm_and_cleans_up(self, warm):
        baseline, config = warm
        before = shm_names()
        result, telemetry = self.run_engine(config)
        assert result.records == baseline.records
        cache = telemetry.golden_cache_summary()
        assert cache["hit_rate"] == 1.0
        # Zero counters are elided from the fold: a warm run records no miss.
        assert cache.get("golden_misses", 0) == 0
        assert cache["shm_hits"] == cache["golden_hits"]
        assert cache["shm_segments"] == 4
        assert shm_names() == before, "engine exit leaked segments"

    def test_pool_rebuilds_do_not_leak_segments(self, warm):
        # Hard crashes kill workers mid-shard and force pool rebuilds; the
        # retried attempts reuse the shard's segment and the terminal
        # release still unlinks every name.
        baseline, config = warm
        before = shm_names()
        chaos = ChaosPolicy(seed=1, hard_crash_rate=0.5, only_attempt=0)
        result, telemetry = self.run_engine(config, chaos=chaos)
        assert result.records == baseline.records
        assert telemetry.golden_cache_summary().get("golden_misses", 0) == 0
        assert shm_names() == before, "pool rebuild leaked segments"

    def test_shm_lost_chaos_is_bit_identical_and_leak_free(self, warm):
        # Satellite contract: losing every shard's segment mid-flight must
        # not change one record byte — the poisoned source falls back to
        # live capture — and must not leave a name behind.
        baseline, config = warm
        before = shm_names()
        chaos = ChaosPolicy(seed=3, shm_lost_rate=1.0)
        result, telemetry = self.run_engine(config, chaos=chaos)
        assert result.records == baseline.records
        cache = telemetry.golden_cache_summary()
        assert cache["shm_lost"] == 4
        # Poisoned sources are no longer consulted, so whatever was served
        # before the loss stays a hit and nothing counts as a miss.
        assert cache.get("golden_misses", 0) == 0
        assert shm_names() == before, "chaos shm_lost leaked segments"

    def test_serial_engine_ignores_segments_entirely(self, warm):
        baseline, config = warm
        result, telemetry = self.run_engine(config, jobs=1)
        assert result.records == baseline.records
        cache = telemetry.golden_cache_summary()
        assert cache["hit_rate"] == 1.0
        assert cache.get("shm_segments", 0) == 0

    def test_shm_module_stats_flow_into_manifest(self, warm):
        _, config = warm
        _, telemetry = self.run_engine(config)
        manifest = telemetry.manifest()
        cache = manifest["golden_cache"]
        assert cache["hit_rate"] == 1.0
        assert cache["shm_bytes"] > 0
        assert cache["artifact_bytes_loaded"] > 0
