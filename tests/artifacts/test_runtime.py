"""GoldenSource policy + the campaign-level bit-identity contract.

The standing contract of the whole subsystem, asserted here end to end on a
real (small) campaign: trial records are byte-identical with the cache cold,
warm, corrupted, unwritable, or disabled.  Corruption surfaces only as an
``artifact_corrupt`` count in the ledger — never an exception, never a
changed record.
"""

import dataclasses

import pytest

from repro.artifacts import runtime
from repro.artifacts.codec import MAGIC
from repro.artifacts.runtime import GoldenSource, golden_source_for
from repro.artifacts.store import GoldenStore
from repro.faults import CampaignConfig, FaultInjectionCampaign

CONFIG = CampaignConfig(
    n_injections=24, seed=7, benchmarks=("mcf", "postmark"), ladder_interval=16
)


@pytest.fixture(autouse=True)
def clean_ledger():
    runtime.reset_stats()
    yield
    runtime.reset_stats()


def run_campaign(config):
    return FaultInjectionCampaign(config).run()


def cached(tmp_path):
    return dataclasses.replace(CONFIG, artifacts=str(tmp_path / "cache"))


def artifact_files(tmp_path):
    return sorted((tmp_path / "cache").rglob("*.art"))


class TestSourcePolicy:
    def test_no_store_no_segment_is_no_source(self):
        assert golden_source_for(CONFIG) is None

    def test_cache_disabled_is_no_source(self, tmp_path):
        config = dataclasses.replace(cached(tmp_path), golden_cache=False)
        assert golden_source_for(config) is None

    def test_trace_campaigns_never_cache(self, tmp_path):
        config = dataclasses.replace(cached(tmp_path), trace=True)
        assert golden_source_for(config) is None

    def test_store_only_and_segment_only_sources(self, tmp_path):
        source = golden_source_for(cached(tmp_path))
        assert isinstance(source, GoldenSource)
        assert source.store is not None and source.segment is None
        source = golden_source_for(CONFIG, segment="xgold-nope")
        assert isinstance(source, GoldenSource)
        assert source.store is None and source.segment == "xgold-nope"

    def test_poisoned_source_neither_serves_nor_saves(self, tmp_path):
        source = golden_source_for(cached(tmp_path))
        source.poison()
        assert source.acquire("mcf", 0, registry=None) is None
        source.offer("mcf", 0, None, None)  # must not touch the store
        assert artifact_files(tmp_path) == []
        # A poisoned source was never consulted: no hit, no miss.
        assert runtime.STATS["golden_hits"] == 0
        assert runtime.STATS["golden_misses"] == 0

    def test_vanished_segment_falls_back_silently(self):
        source = golden_source_for(CONFIG, segment="xgold-000000000000")
        assert source.acquire("mcf", 0, registry=None) is None
        assert runtime.STATS["golden_misses"] == 1


class TestCampaignBitIdentity:
    def test_cold_then_warm_matches_uncached(self, tmp_path):
        baseline = run_campaign(CONFIG)

        cold = run_campaign(cached(tmp_path))
        assert cold.records == baseline.records
        after_cold = runtime.stats()
        assert after_cold["golden_misses"] > 0
        assert after_cold["golden_hits"] == 0
        assert after_cold["artifact_bytes_written"] > 0
        assert artifact_files(tmp_path)

        warm = run_campaign(cached(tmp_path))
        assert warm.records == baseline.records
        delta_hits = runtime.stats()["golden_hits"] - after_cold["golden_hits"]
        delta_misses = runtime.stats()["golden_misses"] - after_cold["golden_misses"]
        assert delta_misses == 0, "warm run must execute zero golden captures"
        assert delta_hits == after_cold["golden_misses"]
        assert runtime.stats()["golden_load_seconds"] > 0.0

    @pytest.mark.parametrize("damage", ["truncate", "garbage", "version"])
    def test_corrupt_artifacts_fall_back_to_live_capture(self, tmp_path, damage):
        baseline = run_campaign(CONFIG)
        run_campaign(cached(tmp_path))  # warm the store

        files = artifact_files(tmp_path)
        assert files
        for path in files:
            blob = path.read_bytes()
            if damage == "truncate":
                path.write_bytes(blob[: len(blob) // 3])
            elif damage == "garbage":
                path.write_bytes(b"\xde\xad" * 256)
            else:
                bumped = bytes([MAGIC[-1] + 1])
                path.write_bytes(MAGIC[:-1] + bumped + blob[len(MAGIC):])

        runtime.reset_stats()
        rerun = run_campaign(cached(tmp_path))
        assert rerun.records == baseline.records
        stats = runtime.stats()
        assert stats["artifact_corrupt"] == len(files)
        assert stats["golden_hits"] == 0
        assert stats["golden_misses"] == len(files)
        # The rerun re-published good artifacts over the corpses...
        assert stats["artifact_bytes_written"] > 0
        runtime.reset_stats()
        final = run_campaign(cached(tmp_path))
        # ...so the next run is warm again.
        assert final.records == baseline.records
        assert runtime.stats()["golden_misses"] == 0

    def test_unwritable_store_counts_write_errors(self, tmp_path):
        baseline = run_campaign(CONFIG)
        # A plain file where the store root should be (permission bits can't
        # make a directory unwritable for root, which is how CI runs).
        root = tmp_path / "cache"
        root.write_bytes(b"not a directory")
        runtime.reset_stats()
        result = run_campaign(dataclasses.replace(CONFIG, artifacts=str(root)))
        assert result.records == baseline.records
        stats = runtime.stats()
        assert stats["artifact_write_errors"] > 0
        assert stats["artifact_bytes_written"] == 0

    def test_cache_disabled_never_touches_the_ledger(self, tmp_path):
        config = dataclasses.replace(cached(tmp_path), golden_cache=False)
        baseline = run_campaign(CONFIG)
        result = run_campaign(config)
        assert result.records == baseline.records
        assert artifact_files(tmp_path) == []
        stats = runtime.stats()
        # Capture seconds still accrue (they feed the campaign summary's
        # capture-vs-load time-share line, cache or no cache); every
        # cache-specific counter stays untouched.
        assert stats.pop("golden_capture_seconds") > 0.0
        assert all(not v for v in stats.values())


class TestLedger:
    def test_reset_preserves_counter_types(self):
        runtime.STATS["golden_hits"] += 3
        runtime.STATS["golden_capture_seconds"] += 1.5
        runtime.reset_stats()
        assert runtime.STATS["golden_hits"] == 0
        assert isinstance(runtime.STATS["golden_hits"], int)
        assert runtime.STATS["golden_capture_seconds"] == 0.0
        assert isinstance(runtime.STATS["golden_capture_seconds"], float)

    def test_stats_returns_a_snapshot(self):
        snap = runtime.stats()
        runtime.STATS["golden_hits"] += 1
        assert snap["golden_hits"] == 0
