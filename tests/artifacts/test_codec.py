"""Artifact codec: bit-exact round trips and corruption rejection.

The codec's contract has two halves.  Forward: a decoded golden group must
be *functionally identical* to the captured one — same results, same page
contents, same TwinPlan columns — with structural sharing preserved so the
campaign's identity-diff restore stays cheap.  Backward: any damaged input
(truncation, bit rot, torn write, version bump, garbage) must raise
:class:`ArtifactCorrupt` — never a stray ``KeyError``/``struct.error``, and
never a silently wrong payload — because the runtime maps that one exception
to the live-capture fallback.
"""

import numpy as np
import pytest

from repro.artifacts.codec import (
    MAGIC,
    PLAN_ABSENT,
    PLAN_NONE,
    PLAN_PRESENT,
    ArtifactCorrupt,
    decode_group,
    encode_group,
)
from repro.faults import capture_golden
from repro.faults.injector import trace_plan
from repro.hypervisor import Activation, REGISTRY, XenHypervisor

DIGEST = "ab" * 32


def act(name: str, *args: int, seq=0) -> Activation:
    return Activation(vmer=REGISTRY.by_name(name).vmer, args=args, domain_id=1, seq=seq)


@pytest.fixture(scope="module")
def captured():
    hv = XenHypervisor(seed=23)
    activation = act("apic_timer", 3)
    followups = (act("sched_op", 2, 1, seq=1), act("page_fault", 4, seq=2))
    golden = capture_golden(hv, activation, followups, ladder_interval=16)
    plan = trace_plan(hv, activation, golden)
    return golden, plan


@pytest.fixture(scope="module")
def blob(captured):
    golden, plan = captured
    return encode_group(DIGEST, golden, (PLAN_PRESENT, plan))


class TestRoundTrip:
    def test_golden_round_trips_bit_exact(self, captured, blob):
        golden, _ = captured
        payload = decode_group(blob, registry=REGISTRY)
        assert payload.digest == DIGEST
        out = payload.golden
        assert out.result == golden.result
        assert out.followups == golden.followups
        assert out.outputs == golden.outputs
        # memoryview == bytes compares contents.
        assert out.heap_image == golden.heap_image
        assert out.checkpoint.pages.keys() == golden.checkpoint.pages.keys()
        for base, page in golden.checkpoint.pages.items():
            assert out.checkpoint.pages[base] == page
        assert len(out.ladder) == len(golden.ladder)
        for mine, theirs in zip(out.ladder, golden.ladder):
            assert mine.core == theirs.core
            assert mine.memory.pages.keys() == theirs.memory.pages.keys()

    def test_plan_round_trips(self, captured, blob):
        _, plan = captured
        state, out = decode_group(blob, registry=REGISTRY).plan_state
        assert state == PLAN_PRESENT
        assert np.array_equal(out.tops, plan.tops)
        assert out.instructions == plan.instructions
        for mine, theirs in zip(out.reads_pos, plan.reads_pos):
            assert np.array_equal(mine, theirs)
        for mine, theirs in zip(out.writes_pos, plan.writes_pos):
            assert np.array_equal(mine, theirs)

    def test_plan_none_and_absent_round_trip(self, captured):
        golden, _ = captured
        for state in (PLAN_NONE, PLAN_ABSENT):
            blob = encode_group(DIGEST, golden, (state, None))
            assert decode_group(blob, registry=REGISTRY).plan_state == (state, None)

    def test_encoding_is_deterministic(self, captured):
        golden, plan = captured
        a = encode_group(DIGEST, golden, (PLAN_PRESENT, plan))
        b = encode_group(DIGEST, golden, (PLAN_PRESENT, plan))
        assert a == b

    def test_structural_sharing_restored(self, blob):
        # One object per unique page blob, shared by the checkpoint and
        # every ladder rung: after the first restore rebinds Memory._base
        # to these pages, later rung restores identity-diff to near no-ops.
        payload = decode_group(blob, registry=REGISTRY)
        golden = payload.golden
        for rung in golden.ladder:
            for base, page in rung.memory.pages.items():
                baseline = golden.checkpoint.pages.get(base)
                if baseline is not None and page == baseline:
                    assert page is baseline

    def test_plan_columns_are_aligned_views(self, blob):
        # int64 columns must map without copy, which requires 8-alignment.
        _, plan = decode_group(blob, registry=REGISTRY).plan_state
        for arr in (plan.tops, *plan.reads_pos, *plan.writes_pos):
            assert arr.dtype == np.int64
            assert arr.ctypes.data % 8 == 0


class TestCorruptionRejection:
    """Every damage mode raises ArtifactCorrupt, nothing else."""

    def test_truncation_everywhere(self, blob):
        # Every prefix shorter than the full blob is corrupt — header,
        # mid-TOC, mid-blob, missing checksum tail alike.
        for cut in range(0, len(blob), max(1, len(blob) // 37)):
            with pytest.raises(ArtifactCorrupt):
                decode_group(blob[:cut], registry=REGISTRY)

    def test_single_bit_rot_detected(self, blob):
        for offset in (0, 7, len(blob) // 2, len(blob) - 1):
            rotten = bytearray(blob)
            rotten[offset] ^= 0x40
            with pytest.raises(ArtifactCorrupt):
                decode_group(bytes(rotten), registry=REGISTRY)

    def test_version_bump_rejected(self, blob):
        assert blob[: len(MAGIC)] == MAGIC
        bumped = MAGIC[:-1] + bytes([MAGIC[-1] + 1]) + blob[len(MAGIC):]
        with pytest.raises(ArtifactCorrupt):
            decode_group(bumped, registry=REGISTRY)

    def test_garbage_rejected(self):
        for garbage in (b"", b"\x00" * 64, b"not an artifact" * 100):
            with pytest.raises(ArtifactCorrupt):
                decode_group(garbage, registry=REGISTRY)

    def test_checksummed_but_structurally_torn_rejected(self, captured):
        # A torn write re-checksummed by an adversary (or a bug) still has
        # to fail structurally — blob references point past the payload —
        # and surface as ArtifactCorrupt, not an IndexError.
        import hashlib

        golden, _ = captured
        blob = encode_group(DIGEST, golden, (PLAN_NONE, None))
        shortened = blob[:-16][: len(blob) - 4096]
        fake = shortened + hashlib.blake2b(shortened, digest_size=16).digest()
        with pytest.raises(ArtifactCorrupt):
            decode_group(fake, registry=REGISTRY)
