"""GoldenStore + golden_digest: artifact identity and filesystem hygiene.

The digest is the cache's entire correctness story: two configs map to the
same artifact exactly when their golden products are byte-identical.  Knobs
that shape the golden capture (seed, workload geometry, ladder placement,
twin-batch capture) must move the digest; knobs that only shape *trials*
(fault model, recovery policy, translation, detection) must not — that is
what lets a detector sweep share one warm cache.
"""

import dataclasses

import pytest

from repro.artifacts.codec import (
    PLAN_NONE,
    PLAN_PRESENT,
    ArtifactCorrupt,
    encode_group,
)
from repro.artifacts.store import GoldenStore, golden_digest
from repro.faults import CampaignConfig, capture_golden
from repro.faults.injector import trace_plan
from repro.faults.model import FaultModel
from repro.hypervisor import Activation, REGISTRY, XenHypervisor

CONFIG = CampaignConfig(n_injections=40, seed=11)


def digest(config=CONFIG, benchmark="mcf", group=0):
    return golden_digest(config, benchmark, group)


class TestDigestIdentity:
    def test_digest_is_stable(self):
        assert digest() == digest()
        assert len(digest()) == 32 and set(digest()) <= set("0123456789abcdef")

    # (the parameter is named "workload" because pytest-benchmark squats on
    # the fixture name "benchmark")
    @pytest.mark.parametrize("workload,group", [("postmark", 0), ("mcf", 1)])
    def test_coordinates_move_the_digest(self, workload, group):
        assert digest(benchmark=workload, group=group) != digest()

    @pytest.mark.parametrize("change", [
        {"seed": 12},
        {"n_domains": 4},
        {"warmup_activations": 6},
        {"ladder_interval": 16},
        {"twin_batch": False},
        # Stream geometry: the workload generator bulk-draws the whole
        # activation-index array, so activation i depends on the total
        # stream length and stride, not just its own prefix.
        {"n_injections": 80},
        {"injections_per_golden": 2},
        {"followup_activations": 4},
    ])
    def test_golden_shaping_knobs_move_the_digest(self, change):
        assert digest(dataclasses.replace(CONFIG, **change)) != digest()

    @pytest.mark.parametrize("change", [
        # Trial-only knobs: golden products are invariant, so sweeps over
        # them share one warm cache.
        {"fault_model": FaultModel(registers=("rip",))},
        {"fault_model": FaultModel(bits=(0, 7))},
        {"recover": "reexecute", "recovery_hazard": 0.25},
        {"translate": False},
        {"artifacts": "elsewhere"},
        {"golden_cache": False},
    ])
    def test_trial_only_knobs_do_not_move_the_digest(self, change):
        assert digest(dataclasses.replace(CONFIG, **change)) == digest()


@pytest.fixture()
def encoded():
    hv = XenHypervisor(seed=5)
    spec = REGISTRY.by_name("apic_timer")
    activation = Activation(vmer=spec.vmer, args=(3,), domain_id=1, seq=0)
    golden = capture_golden(hv, activation, (), ladder_interval=0)
    plan = trace_plan(hv, activation, golden)
    d = digest()
    return d, encode_group(d, golden, (PLAN_PRESENT, plan))


class TestGoldenStore:
    def test_save_then_load_round_trips(self, tmp_path, encoded):
        d, blob = encoded
        store = GoldenStore(tmp_path)
        assert not store.contains(d)
        assert store.load_bytes(d) is None
        assert store.load(d, registry=REGISTRY) is None
        assert store.save(d, blob)
        assert store.contains(d)
        assert store.load_bytes(d) == blob
        payload = store.load(d, registry=REGISTRY)
        assert payload is not None and payload.digest == d
        assert payload.plan_state[0] == PLAN_PRESENT

    def test_content_addressed_layout(self, tmp_path, encoded):
        d, blob = encoded
        store = GoldenStore(tmp_path)
        store.save(d, blob)
        assert store.path_for(d) == tmp_path / "golden" / d[:2] / f"{d}.art"
        assert store.path_for(d).is_file()

    def test_save_is_atomic_no_temp_residue(self, tmp_path, encoded):
        d, blob = encoded
        store = GoldenStore(tmp_path)
        store.save(d, blob)
        leftovers = [
            p for p in tmp_path.rglob("*") if p.is_file() and p.suffix != ".art"
        ]
        assert leftovers == []

    def test_corrupt_file_raises_artifact_corrupt(self, tmp_path, encoded):
        d, blob = encoded
        store = GoldenStore(tmp_path)
        store.save(d, blob[: len(blob) // 2])
        with pytest.raises(ArtifactCorrupt):
            store.load(d, registry=REGISTRY)
        # load_bytes is validation-free by contract.
        assert store.load_bytes(d) == blob[: len(blob) // 2]

    def test_misfiled_artifact_rejected(self, tmp_path, encoded):
        # A valid artifact stored under the wrong digest must not be served:
        # the payload self-identifies and the store cross-checks.
        d, blob = encoded
        wrong = "f" * 64
        store = GoldenStore(tmp_path)
        store.save(wrong, blob)
        with pytest.raises(ArtifactCorrupt, match="self-identifies"):
            store.load(wrong, registry=REGISTRY)

    def test_unwritable_root_degrades_to_noop(self, tmp_path, encoded):
        # A plain file where the store root should be: every mkdir/open under
        # it fails with an OSError no matter the uid (chmod tricks don't
        # stop root, which is how CI runs).
        d, blob = encoded
        root = tmp_path / "ro"
        root.write_bytes(b"not a directory")
        store = GoldenStore(root)
        assert store.save(d, blob) is False
        assert store.load_bytes(d) is None

    def test_encode_matches_codec(self, tmp_path):
        hv = XenHypervisor(seed=5)
        spec = REGISTRY.by_name("apic_timer")
        activation = Activation(vmer=spec.vmer, args=(3,), domain_id=1, seq=0)
        golden = capture_golden(hv, activation, (), ladder_interval=0)
        d = digest()
        store = GoldenStore(tmp_path)
        assert store.encode(d, golden, (PLAN_NONE, None)) == encode_group(
            d, golden, (PLAN_NONE, None)
        )
