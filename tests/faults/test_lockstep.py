"""Lock-step twin batching: batched trials ≡ per-trial execution.

The campaign's batch scan settles *dead* twins (flip overwritten before
the next read, or never touched again) analytically and peels diverging
twins into the per-trial path with a read-point resume hint.  These tests
hold the scan to the determinism contract: for every injection index and
register — including RIP/RFLAGS and indices past the traced run — the
batched records must be bit-identical to per-trial execution, campaign
records must be invariant to the ``twin_batch`` knob, and the knob must
stay outside the config digest so journals interoperate.
"""

import dataclasses
import random

import numpy as np
import pytest

from repro.engine.planner import plan_campaign
from repro.faults import (
    CampaignConfig,
    FaultInjectionCampaign,
    FaultSpec,
    capture_golden,
    run_trial,
    run_twin_batch,
)
from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.machine import lockstep
from repro.machine.lockstep import DEAD, PEEL, TwinPlan, classify_twin


def act(name: str, *args: int, seq=0) -> Activation:
    return Activation(vmer=REGISTRY.by_name(name).vmer, args=args, domain_id=1, seq=seq)


def _plan(tops, reads, writes, n) -> TwinPlan:
    """A hand-built plan with activity only on rbx (index used below)."""
    from repro.machine.registers import ALL_REGISTERS, RegisterFile

    empty = tuple(np.array([], dtype=np.int64) for _ in ALL_REGISTERS)
    rbx = RegisterFile.index_of("rbx")
    reads_pos = list(empty)
    writes_pos = list(empty)
    reads_pos[rbx] = np.asarray(reads, dtype=np.int64)
    writes_pos[rbx] = np.asarray(writes, dtype=np.int64)
    return TwinPlan(
        tops=np.asarray(tops, dtype=np.int64),
        reads_pos=tuple(reads_pos),
        writes_pos=tuple(writes_pos),
        instructions=n,
    )


class TestClassifyTwin:
    """The scan's case analysis on hand-built position columns."""

    PLAN = _plan(tops=[0, 1, 2, 3, 4, 5, 6, 7], reads=[2, 6], writes=[4], n=8)

    def test_read_first_peels_at_read_point(self):
        # Flip at 1 applies at top 1; first read (2) precedes first write (4).
        assert classify_twin(self.PLAN, "rbx", 1) == (PEEL, 2)

    def test_read_at_boundary_peels(self):
        # p == first read: the reading instruction sees the flipped value.
        assert classify_twin(self.PLAN, "rbx", 2) == (PEEL, 2)

    def test_write_first_is_dead(self):
        # Flip at 3: the write at 4 kills it before the read at 6.
        assert classify_twin(self.PLAN, "rbx", 3) == (DEAD, None)

    def test_never_touched_again_is_dead(self):
        assert classify_twin(self.PLAN, "rbx", 7) == (DEAD, None)

    def test_untouched_register_is_dead(self):
        assert classify_twin(self.PLAN, "rcx", 0) == (DEAD, None)

    def test_rip_and_rflags_always_peel(self):
        assert classify_twin(self.PLAN, "rip", 3) == (PEEL, None)
        assert classify_twin(self.PLAN, "rflags", 3) == (PEEL, None)

    def test_index_past_traced_run_peels(self):
        assert classify_twin(self.PLAN, "rbx", 8) == (PEEL, None)

    def test_rep_bulk_snaps_flip_to_next_boundary(self):
        # Dynamic indices 2..5 are one REP dispatch (one top at 2): a flip
        # scheduled inside the bulk applies at the *next* boundary, 6 —
        # past the write at 5, so the read at 3 never sees it.
        plan = _plan(tops=[0, 1, 2, 6, 7], reads=[3], writes=[5], n=8)
        assert classify_twin(plan, "rbx", 4) == (DEAD, None)


class TestBuildPlan:
    """Lowering a real traced activation into position columns."""

    @pytest.fixture(scope="class")
    def plan(self):
        from repro.faults.injector import trace_plan

        hv = XenHypervisor(seed=23)
        activation = act("apic_timer", 3)
        golden = capture_golden(hv, activation, ladder_interval=16)
        plan = trace_plan(hv, activation, golden)
        assert plan is not None
        return plan, golden

    def test_shape_and_monotonicity(self, plan):
        plan, golden = plan
        n = golden.result.instructions
        assert plan.instructions == n
        assert 0 < len(plan.tops) <= n
        assert plan.tops[0] == 0
        for arr in (plan.tops, *plan.reads_pos, *plan.writes_pos):
            assert np.all(np.diff(arr) > 0)
            assert len(arr) == 0 or (arr[0] >= 0 and arr[-1] < n)

    def test_trace_has_register_traffic(self, plan):
        # The activation must actually read and write registers, or the
        # dead/peel split above would be vacuous.
        plan, _ = plan
        assert any(len(a) for a in plan.reads_pos)
        assert any(len(a) for a in plan.writes_pos)


class TestArmAppliedFlip:
    """The read-point resume's injection primitive."""

    def test_flip_is_immediate_and_watch_arms(self):
        hv = XenHypervisor(seed=23)
        activation = act("apic_timer", 3)
        golden = capture_golden(hv, activation)
        hv.restore(golden.checkpoint)
        before = hv.cpu.regs.read("rbx")
        hv.cpu.arm_applied_flip(7, "rbx", 5)
        assert hv.cpu.regs.read("rbx") == before ^ (1 << 5)
        report = hv.cpu.injection_report
        assert report.applied and report.activated is None

    def test_rip_flip_counts_as_activated(self):
        hv = XenHypervisor(seed=23)
        golden = capture_golden(hv, act("apic_timer", 3))
        hv.restore(golden.checkpoint)
        hv.cpu.arm_applied_flip(7, "rip", 2)
        report = hv.cpu.injection_report
        assert report.applied and report.activated
        assert report.activation_index == 7

    def test_rejects_bad_arguments(self):
        hv = XenHypervisor(seed=23)
        with pytest.raises(Exception):
            hv.cpu.arm_applied_flip(0, "not_a_register", 0)
        with pytest.raises(Exception):
            hv.cpu.arm_applied_flip(0, "rbx", 64)


class TestTwinBatchEquivalence:
    """Exhaustive batch ≡ per-trial sweep over one activation."""

    @pytest.fixture(scope="class")
    def setting(self):
        hv = XenHypervisor(seed=23)
        activation = act("apic_timer", 3)
        golden = capture_golden(hv, activation, ladder_interval=16)
        return hv, activation, golden

    @pytest.mark.parametrize("register,bit", [("rbx", 17), ("rip", 2), ("rflags", 6)])
    def test_batch_identical_at_every_index(self, setting, register, bit):
        hv, activation, golden = setting
        n = golden.result.instructions
        faults = [FaultSpec(register, bit, index) for index in range(n)]
        oracle = [
            run_trial(hv, activation, f, golden=golden, benchmark="b")
            for f in faults
        ]
        batch = run_twin_batch(
            hv, activation, faults, golden=golden, benchmark="b"
        )
        assert batch == oracle

    def test_dead_twins_do_not_execute(self, setting):
        hv, activation, golden = setting
        n = golden.result.instructions
        faults = [FaultSpec("rbx", 17, index) for index in range(n)]
        def executed_instructions() -> int:
            return sum(
                c.interpreted_instructions + c.translated_instructions
                for c in hv.cores
            )

        before = dict(hv.lockstep_stats)
        instructions_before = executed_instructions()
        records = run_twin_batch(hv, activation, faults, golden=golden)
        dead = hv.lockstep_stats["dead_twins"] - before["dead_twins"]
        peeled = hv.lockstep_stats["peeled_twins"] - before["peeled_twins"]
        assert dead + peeled == n and dead > 0 and peeled > 0
        # Dead twins synthesize non-activated benign records.
        synthesized = [r for r in records if r.detail == "non-activated"]
        assert len(synthesized) >= dead
        assert all(not r.activated and not r.manifested for r in synthesized)
        # The trace replay + peels execute; dead twins must cost nothing
        # beyond that (strictly fewer instructions than running all n).
        executed = executed_instructions() - instructions_before
        assert executed < (n + 1) * golden.result.instructions

    def test_on_record_sees_every_record_in_order(self, setting):
        hv, activation, golden = setting
        faults = [FaultSpec("rbx", 3, i) for i in range(0, 40, 7)]
        seen = []
        records = run_twin_batch(
            hv, activation, faults, golden=golden, on_record=seen.append
        )
        assert seen == records


class TestCampaignBitIdentity:
    """Blocking gate: the fixed-seed campaign is invariant to the knob."""

    CONFIG = CampaignConfig(n_injections=2000, seed=5)

    def test_2000_injection_campaign_identical_without_twin_batch(self):
        assert self.CONFIG.twin_batch  # on by default
        on = FaultInjectionCampaign(self.CONFIG).run().records
        off_config = dataclasses.replace(self.CONFIG, twin_batch=False)
        off = FaultInjectionCampaign(off_config).run().records
        assert on == off

    def test_twin_batch_outside_config_digest(self):
        on = plan_campaign(self.CONFIG, 4).digest
        off = plan_campaign(
            dataclasses.replace(self.CONFIG, twin_batch=False), 4
        ).digest
        assert on == off


class TestDifferentialFuzz:
    """≥200 seeded scenarios, every injection index batched vs per-trial.

    Scenario diversity comes from the machine seed (memory image and
    handler data), the exit reason, its arguments and the ladder interval;
    each scenario sweeps *every* dynamic instruction index of its golden
    run for a scenario-chosen register (RIP/RFLAGS included, so the
    always-peel paths are fuzzed too), plus out-of-range indices.
    """

    N_SCENARIOS = 200
    _REGS = ("rax", "rbx", "rcx", "rdx", "rsi", "rdi", "r8", "r11",
             "rsp", "rbp", "rip", "rflags")

    def test_batch_matches_per_trial_everywhere(self):
        rng = random.Random(0xFADE)
        reasons = sorted(r.name for r in REGISTRY)
        total_twins = 0
        for scenario in range(self.N_SCENARIOS):
            hv = XenHypervisor(seed=rng.randrange(10_000))
            activation = act(
                rng.choice(reasons), rng.randint(1, 4), rng.randint(1, 2),
                seq=scenario,
            )
            golden = capture_golden(
                hv, activation, ladder_interval=rng.choice((8, 16, 32))
            )
            n = golden.result.instructions
            register = rng.choice(self._REGS)
            bit = rng.randrange(64)
            faults = [FaultSpec(register, bit, i) for i in range(n)]
            faults.append(FaultSpec(register, bit, n + rng.randrange(50)))
            oracle = [
                run_trial(hv, activation, f, golden=golden, benchmark="fuzz")
                for f in faults
            ]
            batch = run_twin_batch(
                hv, activation, faults, golden=golden, benchmark="fuzz"
            )
            assert batch == oracle, (
                f"scenario {scenario}: {activation.vmer} {register} bit {bit}"
            )
            total_twins += len(faults)
        assert total_twins > self.N_SCENARIOS  # every scenario swept indices


class TestStatsLedgers:
    """Per-machine and process-wide counters stay in sync."""

    def test_global_ledger_mirrors_machine_ledger(self):
        hv = XenHypervisor(seed=23)
        activation = act("apic_timer", 3)
        golden = capture_golden(hv, activation, ladder_interval=16)
        faults = [FaultSpec("rbx", 9, i) for i in range(0, 60, 5)]
        global_before = lockstep.stats()
        machine_before = dict(hv.lockstep_stats)
        run_twin_batch(hv, activation, faults, golden=golden)
        global_delta = {
            k: v - global_before[k] for k, v in lockstep.stats().items()
        }
        machine_delta = {
            k: v - machine_before[k] for k, v in hv.lockstep_stats.items()
        }
        assert global_delta == machine_delta
        assert global_delta["twins"] == len(faults)
        assert global_delta["twin_batches"] == 1
