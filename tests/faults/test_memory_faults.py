"""Memory-fault injection (the beyond-ECC extension)."""

import numpy as np
import pytest

from repro.faults import (
    MemoryFaultModel,
    MemoryFaultSpec,
    capture_golden,
    run_memory_trial,
)
from repro.faults.outcomes import DetectionTechnique, FailureClass
from repro.hypervisor import Activation, REGISTRY, XenHypervisor


@pytest.fixture(scope="module")
def hv() -> XenHypervisor:
    return XenHypervisor(seed=71)


def act(name: str, *args: int, domain=1, seq=0) -> Activation:
    return Activation(vmer=REGISTRY.by_name(name).vmer, args=args,
                      domain_id=domain, seq=seq)


class TestSpec:
    def test_duck_types_fault_spec_fields(self):
        spec = MemoryFaultSpec(address=0x2000000, bit=5)
        assert spec.register == "memory"
        assert spec.dynamic_index == 0
        assert spec.bit == 5


class TestModel:
    def test_samples_land_in_non_scratch_slots(self, hv):
        model = MemoryFaultModel()
        rng = np.random.default_rng(0)
        for _ in range(100):
            spec = model.sample(rng, hv.layout)
            slot = hv.layout.slot_at(spec.address)
            assert slot is not None
            assert slot.kind.value != "scratch"
            assert 0 <= spec.bit <= 63


class TestTrials:
    def test_flip_in_untouched_slot_is_latent_or_benign(self, hv):
        """A flipped word nothing reads during the window stays silent."""
        hv.reset()
        activation = act("xen_version", 1)
        golden = capture_golden(hv, activation)
        # Domain 2's wallclock is untouched by a domain-1 version query.
        target = hv.layout.domains[2].wallclock.word_address(0)
        record = run_memory_trial(
            hv, activation, MemoryFaultSpec(target, 7), golden=golden
        )
        assert record.failure_class in (FailureClass.LATENT, FailureClass.BENIGN,
                                        FailureClass.APP_SDC)
        assert not record.detected or record.failure_class is FailureClass.BENIGN

    def test_corrupted_irq_descriptor_trips_the_assertion(self, hv):
        """The Listing 1-style descriptor check catches stale corruption the
        moment the IRQ fires — the memory-fault analogue of Fig. 2 path 1."""
        hv.reset()
        activation = act("do_irq", 4)
        golden = capture_golden(hv, activation)
        target = hv.layout.irq_descs.word_address(4)
        record = run_memory_trial(
            hv, activation, MemoryFaultSpec(target, 40), golden=golden
        )
        assert record.detected_by is DetectionTechnique.SW_ASSERTION
        assert "irq_desc_valid" in record.detail

    def test_corrupted_vcpu_mode_breaks_listing2_invariant(self, hv):
        hv.reset()
        activation = act("sched_op", 1, 0)  # the idle path
        golden = capture_golden(hv, activation)
        target = hv.layout.domains[1].vcpus[0].mode.address
        # Mode flips are overwritten by the handler before the check, so
        # sweep a few bits; at least the run must classify cleanly.
        records = [
            run_memory_trial(hv, activation, MemoryFaultSpec(target, bit), golden=golden)
            for bit in (0, 1, 2)
        ]
        assert all(r.failure_class is not None for r in records)

    def test_corrupted_runqueue_changes_scheduling(self, hv):
        hv.reset()
        activation = act("sched_op", 0, 0)
        golden = capture_golden(hv, activation)
        target = hv.layout.runqueue.word_address(hv.layout.runqueue.words // 2)
        record = run_memory_trial(
            hv, activation, MemoryFaultSpec(target, 62), golden=golden
        )
        assert record.manifested or record.failure_class in (
            FailureClass.LATENT, FailureClass.BENIGN
        )

    def test_trials_are_deterministic(self, hv):
        hv.reset()
        activation = act("event_channel_op", 6, 1)
        golden = capture_golden(hv, activation)
        spec = MemoryFaultSpec(hv.layout.domains[1].evtchn_mask.word_address(0), 6)
        assert run_memory_trial(hv, activation, spec, golden=golden) == \
            run_memory_trial(hv, activation, spec, golden=golden)

    def test_masked_event_channel_drops_the_send(self, hv):
        """Flip the mask bit for the exact port being signalled: the Fig. 5b
        path takes the masked early-exit and the guest never learns."""
        hv.reset()
        activation = act("event_channel_op", 6, 0, domain=1)
        golden = capture_golden(hv, activation)
        mask_word = hv.layout.domains[1].evtchn_mask.word_address(0)
        record = run_memory_trial(
            hv, activation, MemoryFaultSpec(mask_word, 6), golden=golden
        )
        assert record.manifested
        assert record.failure_class in (
            FailureClass.ONE_VM_FAILURE, FailureClass.APP_SDC,
        )
