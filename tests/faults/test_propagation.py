"""Golden-run comparison and consequence classification."""

import pytest

from repro.faults import (
    Divergence,
    FailureClass,
    UndetectedKind,
    capture_golden,
    classify_divergence,
    compute_divergence,
    undetected_kind_for,
)
from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.hypervisor.layout import GLOBAL_OWNER, Slot, ValueKind


def slot(name="s", owner=1, kind=ValueKind.APP_DATA) -> Slot:
    return Slot(name, 0x1000, 4, owner, kind)


def divergence(outputs=(), internals=(), path=False, features=False) -> Divergence:
    return Divergence(
        path_changed=path,
        features_changed=features,
        output_diffs=tuple(outputs),
        internal_diffs=tuple(internals),
    )


ACT = Activation(vmer=0, args=(1,), domain_id=1)


class TestClassification:
    def test_no_divergence_is_benign(self):
        assert classify_divergence(divergence(), ACT) is FailureClass.BENIGN

    def test_guest_app_data_low_bits_is_sdc(self):
        d = divergence(outputs=[(0x1000, slot(), ValueKind.APP_DATA, 5, 7)])
        assert classify_divergence(d, ACT) is FailureClass.APP_SDC

    def test_guest_app_data_high_bits_is_crash(self):
        d = divergence(
            outputs=[(0x1000, slot(), ValueKind.APP_DATA, 5, 5 | (1 << 40))]
        )
        assert classify_divergence(d, ACT) is FailureClass.APP_CRASH

    def test_pointer_kind_is_crash(self):
        d = divergence(outputs=[(0x1000, slot(kind=ValueKind.POINTER), ValueKind.POINTER, 1, 2)])
        assert classify_divergence(d, ACT) is FailureClass.APP_CRASH

    def test_time_kind_is_sdc(self):
        d = divergence(outputs=[(0x1000, slot(kind=ValueKind.TIME), ValueKind.TIME, 1, 2)])
        assert classify_divergence(d, ACT) is FailureClass.APP_SDC

    def test_vcpu_state_is_one_vm_failure(self):
        d = divergence(
            outputs=[(0x1000, slot(kind=ValueKind.VCPU_STATE), ValueKind.VCPU_STATE, 0, 1)]
        )
        assert classify_divergence(d, ACT) is FailureClass.ONE_VM_FAILURE

    def test_dom0_ownership_is_all_vm_failure(self):
        """Section II.A: corrupting the control VM affects the whole system."""
        d = divergence(outputs=[(0x1000, slot(owner=0), ValueKind.APP_DATA, 1, 2)])
        assert classify_divergence(d, ACT) is FailureClass.ALL_VM_FAILURE

    def test_global_control_is_all_vm_failure(self):
        d = divergence(
            internals=[(0x1000, slot(owner=GLOBAL_OWNER, kind=ValueKind.CONTROL))]
        )
        assert classify_divergence(d, ACT) is FailureClass.ALL_VM_FAILURE

    def test_most_severe_wins(self):
        d = divergence(
            outputs=[
                (0x1000, slot(), ValueKind.APP_DATA, 5, 7),
                (0x2000, slot(owner=0), ValueKind.APP_DATA, 1, 2),
            ]
        )
        assert classify_divergence(d, ACT) is FailureClass.ALL_VM_FAILURE

    def test_path_only_change_is_benign(self):
        """A detour that leaves no state behind is harmless to guests."""
        assert classify_divergence(divergence(path=True), ACT) is FailureClass.BENIGN


class TestUndetectedKinds:
    def test_feature_visible_miss_is_misclassify(self):
        d = divergence(path=True, features=True,
                       outputs=[(0x1000, slot(), ValueKind.APP_DATA, 1, 2)])
        assert undetected_kind_for(d, "rax") is UndetectedKind.MIS_CLASSIFY

    def test_pure_time_diff_is_time_values(self):
        d = divergence(outputs=[(0x1000, slot(kind=ValueKind.TIME), ValueKind.TIME, 1, 2)])
        assert undetected_kind_for(d, "rax") is UndetectedKind.TIME_VALUES

    def test_pointer_or_rsp_is_stack_values(self):
        d = divergence(
            internals=[(0x1000, slot(kind=ValueKind.POINTER))]
        )
        assert undetected_kind_for(d, "rax") is UndetectedKind.STACK_VALUES
        d2 = divergence(outputs=[(0x1000, slot(), ValueKind.APP_DATA, 1, 2)])
        assert undetected_kind_for(d2, "rsp") is UndetectedKind.STACK_VALUES

    def test_fallback_is_other(self):
        d = divergence(outputs=[(0x1000, slot(), ValueKind.APP_DATA, 1, 2)])
        assert undetected_kind_for(d, "rax") is UndetectedKind.OTHER_VALUES


class TestDivergenceComputation:
    @pytest.fixture(scope="class")
    def hv(self):
        return XenHypervisor(seed=31)

    def test_identical_rerun_has_no_divergence(self, hv):
        hv.reset()
        act = Activation(vmer=REGISTRY.by_name("set_timer_op").vmer, args=(9,), domain_id=1)
        golden = capture_golden(hv, act)
        hv.restore(golden.checkpoint)
        result = hv.execute(act)
        d = compute_divergence(hv, act, golden, result)
        assert not d.any

    def test_scratch_slots_do_not_count(self, hv):
        """Scratch/stat divergence must never classify as a failure."""
        hv.reset()
        act = Activation(vmer=REGISTRY.by_name("mmu_update").vmer, args=(8, 1), domain_id=1)
        golden = capture_golden(hv, act)
        hv.restore(golden.checkpoint)
        result = hv.execute(act)
        # Corrupt a scratch word post-hoc: still no reported divergence.
        hv.memory.write_u64(hv.layout.scratch.word_address(0), 0xDEAD)
        d = compute_divergence(hv, act, golden, result)
        assert not d.internal_diffs

    def test_golden_captures_followups(self, hv):
        hv.reset()
        act = Activation(vmer=REGISTRY.by_name("xen_version").vmer, args=(1,), domain_id=1)
        follows = (
            Activation(vmer=REGISTRY.by_name("set_timer_op").vmer, args=(2,), domain_id=1, seq=1),
            Activation(vmer=REGISTRY.by_name("do_irq").vmer, args=(3,), domain_id=2, seq=2),
        )
        golden = capture_golden(hv, act, follows)
        assert len(golden.followups) == 2
        assert golden.followups[0].reason.name == "set_timer_op"
