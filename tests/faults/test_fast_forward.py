"""Golden-prefix fast-forward: ladder trials ≡ from-scratch trials.

The campaign's trial hot path resumes the faulty run from the nearest
mid-run machine checkpoint at-or-before the injection index instead of
re-executing the whole golden prefix.  These tests hold that optimization
to the determinism contract: for *every* injection index, the fast-forward
path must produce a trial record bit-identical to full re-execution, and
campaign records must be invariant to the ladder interval and tracer mode.
"""

import dataclasses

import pytest

from repro.faults import (
    CampaignConfig,
    FaultInjectionCampaign,
    FaultSpec,
    capture_golden,
    run_trial,
)
from repro.hypervisor import Activation, REGISTRY, XenHypervisor


def act(name: str, *args: int, seq=0) -> Activation:
    return Activation(vmer=REGISTRY.by_name(name).vmer, args=args, domain_id=1, seq=seq)


class TestEveryInjectionIndex:
    """Exhaustive ladder ≡ from-scratch sweep over one small activation."""

    @pytest.fixture(scope="class")
    def setting(self):
        hv = XenHypervisor(seed=23)
        activation = act("apic_timer", 3)
        baseline = capture_golden(hv, activation)
        hv.restore(baseline.checkpoint)
        laddered = capture_golden(hv, activation, ladder_interval=16)
        assert laddered.result == baseline.result
        assert len(laddered.ladder) >= 2, "activation too short to ladder"
        return hv, activation, baseline, laddered

    def test_records_identical_at_every_index(self, setting):
        hv, activation, baseline, laddered = setting
        n = baseline.result.instructions
        fast_forwarded = 0
        for index in range(n):
            fault = FaultSpec("rbx", 17, index)
            scratch = run_trial(hv, activation, fault, golden=baseline)
            before = dict(hv.ff_stats)
            fast = run_trial(hv, activation, fault, golden=laddered)
            assert fast == scratch, f"divergence at injection index {index}"
            fast_forwarded += hv.ff_stats["fast_forwarded"] - before["fast_forwarded"]
        # Rung 0 sits at index 0, so every single trial skips the prepare.
        assert fast_forwarded == n

    def test_skip_accounting_matches_rung_indices(self, setting):
        hv, activation, _, laddered = setting
        before = dict(hv.ff_stats)
        run_trial(hv, activation, FaultSpec("rcx", 4, 40), golden=laddered)
        rung = max(r.index for r in laddered.ladder if r.index <= 40)
        assert hv.ff_stats["trials"] == before["trials"] + 1
        assert (
            hv.ff_stats["instructions_skipped"]
            == before["instructions_skipped"] + rung
        )


class TestSideExitPrecision:
    """Translated trials ≡ interpreted trials at *every* injection index.

    This is the translation cache's determinism contract at its sharpest:
    a flip pending mid-would-be-block must interpret up to the injection
    point, and the injected state's downstream consequences (activation
    classification, exception details, counter samples, path hash) must be
    bit-identical to the interpreter-only machine.  Sweeping every dynamic
    instruction index of one activation covers side exits at every offset
    of every block the golden path executes.
    """

    @pytest.fixture(scope="class")
    def machines(self):
        interp_hv = XenHypervisor(seed=23, translate=False)
        trans_hv = XenHypervisor(seed=23, translate=True)
        activation = act("apic_timer", 3)
        interp_golden = capture_golden(interp_hv, activation, ladder_interval=16)
        trans_golden = capture_golden(trans_hv, activation, ladder_interval=16)
        assert interp_golden.result == trans_golden.result
        assert interp_golden.ladder == trans_golden.ladder
        return interp_hv, trans_hv, activation, interp_golden, trans_golden

    @pytest.mark.parametrize("register,bit", [("rbx", 17), ("rip", 2), ("rflags", 6)])
    def test_trials_identical_at_every_index(self, machines, register, bit):
        interp_hv, trans_hv, activation, interp_golden, trans_golden = machines
        n = interp_golden.result.instructions
        for index in range(n):
            fault = FaultSpec(register, bit, index)
            interp = run_trial(interp_hv, activation, fault, golden=interp_golden)
            trans = run_trial(trans_hv, activation, fault, golden=trans_golden)
            assert trans == interp, (
                f"translated trial diverged at injection index {index} "
                f"({register} bit {bit})"
            )

    def test_translated_machine_actually_translates(self, machines):
        _, trans_hv, _, _, _ = machines
        stats = trans_hv.translation_stats()
        assert stats["block_executions"] > 0
        assert stats["translated_instructions"] > 0


class TestRecordsInvariance:
    """Campaign science must not depend on performance knobs."""

    CONFIG = CampaignConfig(n_injections=60, seed=9)

    @pytest.fixture(scope="class")
    def reference(self):
        return FaultInjectionCampaign(self.CONFIG).run().records

    @pytest.mark.parametrize("interval", [0, 1, 7, 500])
    def test_ladder_interval_does_not_change_records(self, reference, interval):
        config = dataclasses.replace(self.CONFIG, ladder_interval=interval)
        assert FaultInjectionCampaign(config).run().records == reference

    def test_full_tracing_does_not_change_records(self, reference):
        config = dataclasses.replace(self.CONFIG, trace=True)
        assert FaultInjectionCampaign(config).run().records == reference

    def test_disabling_translation_does_not_change_records(self, reference):
        config = dataclasses.replace(self.CONFIG, translate=False)
        assert FaultInjectionCampaign(config).run().records == reference

    def test_interval_zero_never_fast_forwards(self):
        hv = XenHypervisor(seed=31)
        golden = capture_golden(hv, act("do_irq", 2), ladder_interval=0)
        assert golden.ladder == ()
        run_trial(hv, act("do_irq", 2), FaultSpec("rdx", 3, 5), golden=golden)
        assert hv.ff_stats["fast_forwarded"] == 0
