"""Outcome taxonomy semantics."""

import pytest

from repro.faults.outcomes import (
    DetectionTechnique,
    FailureClass,
    FaultSpec,
    TrialRecord,
    UndetectedKind,
    most_severe,
)


class TestFailureClass:
    def test_long_latency_is_exactly_the_cross_vm_entry_classes(self):
        long = {c for c in FailureClass if c.is_long_latency}
        assert long == {
            FailureClass.ONE_VM_FAILURE,
            FailureClass.ALL_VM_FAILURE,
            FailureClass.APP_CRASH,
            FailureClass.APP_SDC,
        }

    def test_benign_is_not_manifested(self):
        assert not FailureClass.BENIGN.is_manifested
        assert FailureClass.APP_SDC.is_manifested
        assert FailureClass.HYPERVISOR_CRASH.is_manifested

    def test_host_side_failures_are_short_latency(self):
        assert not FailureClass.HYPERVISOR_CRASH.is_long_latency
        assert not FailureClass.HYPERVISOR_HANG.is_long_latency

    def test_most_severe_ordering(self):
        assert most_severe([FailureClass.APP_SDC, FailureClass.ALL_VM_FAILURE]) is FailureClass.ALL_VM_FAILURE
        assert most_severe([FailureClass.APP_SDC, FailureClass.APP_CRASH]) is FailureClass.APP_CRASH
        assert most_severe([FailureClass.ONE_VM_FAILURE, FailureClass.APP_CRASH]) is FailureClass.ONE_VM_FAILURE
        assert most_severe([]) is FailureClass.BENIGN


class TestTrialRecord:
    def make(self, **kw) -> TrialRecord:
        base = dict(
            benchmark="mcf",
            vmer=3,
            fault=FaultSpec("rax", 5, 10),
            activated=True,
            failure_class=FailureClass.APP_SDC,
            detected_by=DetectionTechnique.VM_TRANSITION,
            detection_latency=42,
        )
        base.update(kw)
        return TrialRecord(**base)

    def test_detected_property(self):
        assert self.make().detected
        assert not self.make(detected_by=DetectionTechnique.UNDETECTED,
                             detection_latency=None).detected

    def test_long_latency_follows_failure_class(self):
        assert self.make().long_latency
        assert not self.make(failure_class=FailureClass.HYPERVISOR_CRASH).long_latency

    def test_manifested_follows_failure_class(self):
        assert not self.make(failure_class=FailureClass.BENIGN).manifested

    def test_undetected_kind_enum_matches_table2(self):
        assert {k.value for k in UndetectedKind} == {
            "mis_classify", "stack_values", "time_values", "other_values",
        }
