"""Fault model, single trials, and campaign orchestration."""

import numpy as np
import pytest

from repro.errors import CampaignConfigError
from repro.faults import (
    CampaignConfig,
    FaultInjectionCampaign,
    FaultModel,
    FaultSpec,
    capture_golden,
    run_trial,
)
from repro.faults.outcomes import DetectionTechnique, FailureClass
from repro.hypervisor import Activation, REGISTRY, XenHypervisor
from repro.machine.registers import INJECTABLE_REGISTERS


@pytest.fixture(scope="module")
def hv() -> XenHypervisor:
    return XenHypervisor(seed=11)


def act(name: str, *args: int, seq=0) -> Activation:
    return Activation(vmer=REGISTRY.by_name(name).vmer, args=args, domain_id=1, seq=seq)


class TestFaultModel:
    def test_samples_stay_in_bounds(self):
        model = FaultModel()
        rng = np.random.default_rng(0)
        for _ in range(200):
            spec = model.sample(rng, run_length=50)
            assert spec.register in INJECTABLE_REGISTERS
            assert 0 <= spec.bit <= 63
            assert 0 <= spec.dynamic_index < 50

    def test_register_restriction(self):
        model = FaultModel(registers=("rip",))
        rng = np.random.default_rng(1)
        assert all(model.sample(rng, 10).register == "rip" for _ in range(20))

    def test_validation(self):
        with pytest.raises(CampaignConfigError):
            FaultModel(registers=())
        with pytest.raises(CampaignConfigError):
            FaultModel(registers=("xmm0",))
        with pytest.raises(CampaignConfigError):
            FaultModel(bits=(0, 99))
        with pytest.raises(CampaignConfigError):
            FaultModel().sample(np.random.default_rng(0), 0)


class TestRunTrial:
    def test_pointer_corruption_detected_by_hw_exception(self, hv):
        hv.reset()
        a = act("mmu_update", 10, 1)
        golden = capture_golden(hv, a)
        # rbp is the globals base: flipping a high bit derails the very next
        # memory access through it.
        rec = run_trial(
            hv, a, FaultSpec("rbp", 40, 5), golden=golden, benchmark="mcf"
        )
        assert rec.detected_by is DetectionTechnique.HW_EXCEPTION
        assert rec.failure_class is FailureClass.HYPERVISOR_CRASH
        assert rec.detection_latency is not None

    def test_non_activated_fault_is_benign(self, hv):
        hv.reset()
        a = act("xen_version", 1, 0)
        golden = capture_golden(hv, a)
        # r15 is never touched by any handler.
        rec = run_trial(hv, a, FaultSpec("r15", 30, 2), golden=golden)
        assert rec.failure_class is FailureClass.BENIGN
        assert not rec.activated
        assert not rec.detected

    def test_golden_state_restored_between_uses(self, hv):
        """Running a trial must not leak faulty state into the next golden."""
        hv.reset()
        a = act("event_channel_op", 5, 0)
        golden = capture_golden(hv, a)
        hv.restore(golden.checkpoint)
        before = hv.memory.checkpoint()
        run_trial(hv, a, FaultSpec("rbx", 12, 3), golden=golden)
        hv.restore(golden.checkpoint)
        assert hv.memory.checkpoint() == before

    def test_trial_is_deterministic(self, hv):
        hv.reset()
        a = act("grant_table_op", 12, 2)
        golden = capture_golden(hv, a)
        fault = FaultSpec("rcx", 7, 4)
        rec1 = run_trial(hv, a, fault, golden=golden)
        rec2 = run_trial(hv, a, fault, golden=golden)
        assert rec1 == rec2

    def test_some_faults_cross_vm_entry(self, hv):
        """Sweeping bits over a data register in the cpuid-emulation path must
        produce at least one long-latency (guest-visible) outcome."""
        hv.reset()
        a = act("hvm_cpuid", 1, 0)
        golden = capture_golden(hv, a)
        classes = set()
        for bit in range(0, 32, 3):
            for idx in range(golden.result.instructions):
                rec = run_trial(hv, a, FaultSpec("rbx", bit, idx), golden=golden)
                classes.add(rec.failure_class)
        assert any(c.is_long_latency for c in classes)


class TestCampaign:
    def test_config_validation(self):
        with pytest.raises(CampaignConfigError):
            CampaignConfig(benchmarks=())
        with pytest.raises(CampaignConfigError):
            CampaignConfig(n_injections=0)
        with pytest.raises(CampaignConfigError):
            CampaignConfig(injections_per_golden=0)

    def test_campaign_runs_and_is_deterministic(self):
        cfg = CampaignConfig(benchmarks=("mcf", "postmark"), n_injections=60, seed=9)
        r1 = FaultInjectionCampaign(cfg).run()
        r2 = FaultInjectionCampaign(cfg).run()
        assert r1.records == r2.records
        assert len(r1) == 60

    def test_campaign_covers_requested_benchmarks(self):
        cfg = CampaignConfig(benchmarks=("bzip2", "canneal"), n_injections=40, seed=3)
        result = FaultInjectionCampaign(cfg).run()
        assert {r.benchmark for r in result.records} == {"bzip2", "canneal"}
        assert len(result.for_benchmark("bzip2")) == 20

    def test_campaign_produces_mixed_outcomes(self):
        cfg = CampaignConfig(n_injections=300, seed=4)
        result = FaultInjectionCampaign(cfg).run()
        classes = {r.failure_class for r in result.records}
        assert FailureClass.BENIGN in classes
        assert FailureClass.HYPERVISOR_CRASH in classes
        assert len(result.manifested) > 20
        assert len(result.activated) >= len(result.manifested) - sum(
            1 for r in result.records if r.failure_class is FailureClass.BENIGN
        )

    def test_progress_callback_fires(self):
        calls = []
        cfg = CampaignConfig(benchmarks=("mcf",), n_injections=500, seed=1)
        FaultInjectionCampaign(cfg).run(progress=lambda d, t: calls.append((d, t)))
        assert calls and calls[-1][0] <= calls[-1][1]
