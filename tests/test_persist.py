"""Persistence round-trips for rules, records and datasets."""

import json

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.faults import CampaignConfig, FaultInjectionCampaign
from repro.faults.outcomes import (
    DetectionTechnique,
    FailureClass,
    FaultSpec,
    TrialRecord,
    UndetectedKind,
)
from repro.ml import Dataset, DecisionTreeClassifier, compile_tree
from repro.persist import (
    ModelArtifact,
    append_records_jsonl,
    iter_records_jsonl,
    load_dataset,
    load_model,
    load_records,
    load_rules,
    save_dataset,
    save_model,
    save_records,
    save_rules,
)
from repro.xentry import VMTransitionDetector, train_and_evaluate

from tests.ml.test_trees import separable_dataset


class TestRules:
    def test_roundtrip_preserves_predictions(self, tmp_path):
        ds = separable_dataset(300, seed=1)
        rules = compile_tree(DecisionTreeClassifier().fit(ds))
        path = tmp_path / "rules.json"
        save_rules(rules, path)
        loaded = load_rules(path)
        assert (loaded.predict(ds.X) == rules.predict(ds.X)).all()
        assert loaded.max_depth == rules.max_depth
        assert loaded.feature_names == rules.feature_names

    def test_loaded_rules_deploy_as_detector(self, tmp_path):
        ds = separable_dataset(200, seed=2)
        path = tmp_path / "rules.json"
        save_rules(compile_tree(DecisionTreeClassifier().fit(ds)), path)
        detector = VMTransitionDetector(rules=load_rules(path))
        assert detector.flags_incorrect(tuple(ds.X[0])) in (True, False)

    def test_format_guard(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(DatasetError):
            load_rules(path)


class TestModels:
    @pytest.fixture(scope="class")
    def model(self):
        train = separable_dataset(300, seed=5)
        test = separable_dataset(150, seed=6)
        return train_and_evaluate(train, test, algorithm="decision_tree", seed=1)

    def test_roundtrip_preserves_rules_and_evaluation(self, tmp_path, model):
        path = tmp_path / "model.json"
        save_model(model, path)
        loaded = load_model(path)
        assert isinstance(loaded, ModelArtifact)
        assert loaded.name == "decision_tree"
        X = model.test_set.X
        assert (loaded.rules.predict_batch(X) == model.rules.predict_batch(X)).all()
        assert loaded.evaluation["accuracy"] == model.accuracy
        assert (
            loaded.evaluation["false_positive_rate"] == model.false_positive_rate
        )
        counts = loaded.evaluation["confusion"]
        assert sum(counts.values()) == model.confusion.total

    def test_loaded_artifact_is_a_detector(self, tmp_path, model):
        path = tmp_path / "model.json"
        save_model(model, path)
        artifact = load_model(path)
        features = tuple(int(v) for v in model.test_set.X[0])
        assert artifact.flags_incorrect(features) == model.rules.flags_incorrect(
            features
        )

    def test_loaded_artifact_batch_path_matches_in_memory_model(
        self, tmp_path, model
    ):
        """save -> load -> classify_batch is bit-identical to TrainedModel.rules.

        The streaming scorer feeds loaded artifacts straight into the batch
        path, so the delegation must not change a single label or
        comparison count.
        """
        path = tmp_path / "model.json"
        save_model(model, path)
        artifact = load_model(path)
        X = model.test_set.X
        labels, comparisons = artifact.classify_batch(X)
        ref_labels, ref_comparisons = model.rules.classify_batch(X)
        assert (labels == ref_labels).all()
        assert (comparisons == ref_comparisons).all()
        assert (artifact.predict_batch(X) == model.rules.predict_batch(X)).all()
        assert (
            artifact.flags_incorrect_batch(X)
            == model.rules.flags_incorrect_batch(X)
        ).all()
        # Batch delegation agrees with the per-row detector protocol.
        assert artifact.flags_incorrect_batch(X)[0] == artifact.flags_incorrect(
            tuple(int(v) for v in X[0])
        )

    def test_format_guard(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "xentry-rules-v1"}))
        with pytest.raises(DatasetError, match="xentry-model-v1"):
            load_model(path)

    def test_model_without_rules_rejected(self, tmp_path, model):
        from dataclasses import replace

        with pytest.raises(DatasetError, match="no compiled rules"):
            save_model(replace(model, rules=None), tmp_path / "model.json")


class TestRecords:
    @pytest.fixture(scope="class")
    def records(self):
        cfg = CampaignConfig(benchmarks=("mcf",), n_injections=80, seed=6)
        return FaultInjectionCampaign(cfg).run().records

    def test_roundtrip_is_identity(self, tmp_path, records):
        path = tmp_path / "records.jsonl"
        count = save_records(records, path)
        assert count == len(records)
        assert load_records(path) == records

    def test_truncation_detected(self, tmp_path, records):
        path = tmp_path / "records.jsonl"
        save_records(records, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-3]) + "\n")
        with pytest.raises(DatasetError, match="truncated"):
            load_records(path)

    def test_records_are_analyzable_after_reload(self, tmp_path, records):
        from repro.analysis import coverage_by_technique

        path = tmp_path / "records.jsonl"
        save_records(records, path)
        reloaded = load_records(path)
        assert (
            coverage_by_technique(reloaded).coverage
            == coverage_by_technique(records).coverage
        )


class TestJsonlStreaming:
    """Append-safe JSONL: the streaming substrate under the engine journal."""

    @pytest.fixture(scope="class")
    def records(self):
        cfg = CampaignConfig(benchmarks=("mcf",), n_injections=40, seed=6)
        return FaultInjectionCampaign(cfg).run().records

    def test_appends_accumulate(self, tmp_path, records):
        path = tmp_path / "stream.jsonl"
        assert append_records_jsonl(records[:15], path) == 15
        assert append_records_jsonl(records[15:], path, fsync=True) == 25
        assert tuple(iter_records_jsonl(path)) == records

    def test_iteration_is_lazy(self, tmp_path, records):
        path = tmp_path / "stream.jsonl"
        append_records_jsonl(records, path)
        it = iter_records_jsonl(path)
        assert next(it) == records[0]  # no full read required

    def test_blank_lines_skipped(self, tmp_path, records):
        path = tmp_path / "stream.jsonl"
        append_records_jsonl(records[:3], path)
        with open(path, "a") as fh:
            fh.write("\n\n")
        append_records_jsonl(records[3:6], path)
        assert tuple(iter_records_jsonl(path)) == records[:6]

    def test_roundtrip_of_every_enum_and_none_combination(self, tmp_path):
        """Synthetic records exercising the full field space, not just the
        combinations a small campaign happens to produce."""
        specimens = []
        for technique in DetectionTechnique:
            for failure in FailureClass:
                detected = technique is not DetectionTechnique.UNDETECTED
                specimens.append(
                    TrialRecord(
                        benchmark="mcf",
                        vmer=7,
                        fault=FaultSpec("rip", 63, 1234),
                        activated=detected or failure.is_manifested,
                        failure_class=failure,
                        detected_by=technique,
                        detection_latency=17 if detected else None,
                        undetected_kind=None,
                        detail="x" if detected else "",
                    )
                )
        for kind in UndetectedKind:
            specimens.append(
                TrialRecord(
                    benchmark="postmark",
                    vmer=1,
                    fault=FaultSpec("rsp", 0, 0),
                    activated=True,
                    failure_class=FailureClass.APP_SDC,
                    detected_by=DetectionTechnique.UNDETECTED,
                    detection_latency=None,
                    undetected_kind=kind,
                )
            )
        path = tmp_path / "specimens.jsonl"
        append_records_jsonl(specimens, path)
        loaded = tuple(iter_records_jsonl(path))
        assert loaded == tuple(specimens)
        # Enum fields come back as real enums, not their string values.
        assert isinstance(loaded[0].failure_class, FailureClass)
        assert isinstance(loaded[0].detected_by, DetectionTechnique)
        assert isinstance(loaded[-1].undetected_kind, UndetectedKind)


class TestDatasets:
    def test_roundtrip(self, tmp_path):
        ds = separable_dataset(150, seed=3)
        path = tmp_path / "data.npz"
        save_dataset(ds, path)
        loaded = load_dataset(path)
        assert (loaded.X == ds.X).all()
        assert (loaded.y == ds.y).all()
        assert loaded.feature_names == ds.feature_names

    def test_loaded_dataset_trains(self, tmp_path):
        ds = separable_dataset(150, seed=4)
        path = tmp_path / "data.npz"
        save_dataset(ds, path)
        tree = DecisionTreeClassifier().fit(load_dataset(path))
        assert tree.n_nodes >= 1
