"""Deterministic random-stream plumbing."""

import numpy as np

from repro import rng


class TestDeriveSeed:
    def test_same_path_same_seed(self):
        assert rng.derive_seed(5, "a", 1) == rng.derive_seed(5, "a", 1)

    def test_different_roots_differ(self):
        assert rng.derive_seed(5, "a") != rng.derive_seed(6, "a")

    def test_different_paths_differ(self):
        assert rng.derive_seed(5, "a") != rng.derive_seed(5, "b")
        assert rng.derive_seed(5, "a", "b") != rng.derive_seed(5, "ab")

    def test_path_segments_are_order_sensitive(self):
        assert rng.derive_seed(5, "x", "y") != rng.derive_seed(5, "y", "x")

    def test_non_string_components_accepted(self):
        assert rng.derive_seed(5, 1, (2, 3)) == rng.derive_seed(5, 1, (2, 3))

    def test_seed_fits_in_64_bits(self):
        assert 0 <= rng.derive_seed(123456789, "long", "path") < 2**64


class TestStreams:
    def test_streams_are_reproducible(self):
        a = rng.stream(9, "workload", "mcf").integers(0, 100, 10)
        b = rng.stream(9, "workload", "mcf").integers(0, 100, 10)
        assert (a == b).all()

    def test_streams_are_independent(self):
        a = rng.stream(9, "workload", "mcf").integers(0, 1000, 50)
        b = rng.stream(9, "faults", "mcf").integers(0, 1000, 50)
        assert not (a == b).all()

    def test_creation_order_does_not_matter(self):
        first = rng.stream(9, "a")
        _ = first.integers(0, 10, 5)  # advance it
        second = rng.stream(9, "b").integers(0, 10, 5)
        fresh = rng.stream(9, "b").integers(0, 10, 5)
        assert (second == fresh).all()


class TestSpawn:
    def test_spawn_count(self):
        children = rng.spawn(np.random.default_rng(0), 4)
        assert len(children) == 4

    def test_children_differ(self):
        children = rng.spawn(np.random.default_rng(0), 2)
        a = children[0].integers(0, 1000, 20)
        b = children[1].integers(0, 1000, 20)
        assert not (a == b).all()

    def test_spawn_is_deterministic(self):
        a = rng.spawn(np.random.default_rng(7), 3)[2].integers(0, 100, 10)
        b = rng.spawn(np.random.default_rng(7), 3)[2].integers(0, 100, 10)
        assert (a == b).all()
